"""Prefix synthesis: reconstruct the evicted head of a flight-recorder log.

:mod:`repro.store.recover` synthesizes the missing *tail* of a crashed
writer's log (the ``partial`` tokens a finalize would have emitted).  This
module is the mirror image for the bounded ring recorder: the *prefix* of
each thread's log was evicted, and the surviving suffix decodes against a
:class:`~repro.tracing.logfmt.SegmentAnchor` that names the frames still
open at the eviction horizon and how many tokens were dropped.

Reconstruction works frame-by-frame down the anchor chain:

* An anchored frame's first retained ``path`` token decodes its entire
  in-flight Ball-Larus path — path ids embed their start block — so the
  only missing control flow is the frame's *earlier completed* paths.
  Every such path ended in the back edge into ``blocks[0]``, so a DAG
  path ``entry → u`` with ``(u, blocks[0])`` a back edge is a legal
  reconstruction of the first evicted path, and DAG cycles
  ``blocks[0] → u`` reconstruct the others one evicted token apiece.
* The anchor's ``calls_done`` count says how many callee activations the
  frame completed before the horizon.  Call sites inside synthesized
  blocks get synthesized activations (a DAG path entry → RET, recursing
  into *their* call sites); the remainder must sit in the already-decoded
  blocks, whose CALL instructions name the exact targets.
* The anchor's ``tokens_before`` count is the bug-report hint that sizes
  the reconstruction: padding cycles are added until the synthesized
  token count matches the evicted token count (any residual is reported,
  not hidden).

Synthesized blocks are *candidates*, not ground truth: symbolic execution
marks every SAP and path condition originating in them (``synth``), the
encoder drops those path conditions and frees those reads' values —
"seed each thread from an unknown entry state" — and schedule replay
remains the final arbiter, exactly as for ordinary reproduction.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.minilang import bytecode as bc

_MAX_SYNTH_DEPTH = 12


class PrefixSynthesisError(Exception):
    """The surviving suffix is inconsistent with its eviction anchor.

    Raised instead of guessing: a suffix log that cannot be grounded in a
    legal prefix must be refused, never silently treated as complete.
    """

    def __init__(self, message, thread=None):
        super().__init__(message)
        self.thread = thread


@dataclass
class ThreadSynthesis:
    """What was reconstructed for one thread."""

    thread: str
    anchored_frames: int = 0
    synth_blocks: int = 0
    synth_calls: int = 0
    padding_cycles: int = 0
    evicted_tokens: int = 0
    accounted_tokens: int = 0
    notes: list = field(default_factory=list)

    @property
    def residual_tokens(self):
        return self.evicted_tokens - self.accounted_tokens

    def to_json(self):
        return {
            "thread": self.thread,
            "anchored_frames": self.anchored_frames,
            "synth_blocks": self.synth_blocks,
            "synth_calls": self.synth_calls,
            "padding_cycles": self.padding_cycles,
            "evicted_tokens": self.evicted_tokens,
            "accounted_tokens": self.accounted_tokens,
            "residual_tokens": self.residual_tokens,
            "notes": list(self.notes),
        }


@dataclass
class SynthesisReport:
    threads: dict = field(default_factory=dict)  # thread -> ThreadSynthesis

    @property
    def total_synth_blocks(self):
        return sum(t.synth_blocks for t in self.threads.values())

    @property
    def exact(self):
        return all(t.residual_tokens == 0 for t in self.threads.values())

    def to_json(self):
        return {name: t.to_json() for name, t in sorted(self.threads.items())}


# -- CFG searches (on the Ball-Larus DAG: real edges minus back edges) -----


def _dag_path(bl, func, start, goal_pred, include_start_goal=True):
    """Shortest DAG path [start..goal] with goal_pred(goal); None if none."""
    if include_start_goal and goal_pred(start):
        return [start]
    seen = {start}
    queue = deque([[start]])
    while queue:
        path = queue.popleft()
        for succ in func.blocks[path[-1]].successors():
            if (path[-1], succ) in bl.back_edges or succ in seen:
                continue
            if goal_pred(succ):
                return path + [succ]
            seen.add(succ)
            queue.append(path + [succ])
    return None


def _entry_path(bl, func, first_block):
    """DAG path entry → u with (u, first_block) a back edge."""
    return _dag_path(
        bl, func, 0, lambda n: (n, first_block) in bl.back_edges
    )


def _cycle_path(bl, func, first_block):
    """DAG path first_block → u closing the back edge into first_block."""
    return _dag_path(
        bl, func, first_block, lambda n: (n, first_block) in bl.back_edges
    )


def _ret_path(bl, func):
    """DAG path entry → a RET block (every function has one)."""

    def is_ret(n):
        term = func.blocks[n].terminator
        return term is not None and term.op == bc.RET

    return _dag_path(bl, func, 0, is_ret)


def _call_targets(func, blocks):
    """CALL targets in ``blocks``, in execution order."""
    targets = []
    for block_id in blocks:
        for instr in func.blocks[block_id].instrs:
            if instr.op == bc.CALL:
                targets.append(instr.arg)
    return targets


def _synth_activation(program, paths, target, thread, depth=0):
    """A fully synthesized completed activation of ``target``.

    Returns (FrameTrace, token_cost): enter + one path + exit = 3 tokens,
    plus the costs of activations at CALL sites along the chosen path.
    """
    from repro.tracing.decoder import FrameTrace

    if depth > _MAX_SYNTH_DEPTH:
        raise PrefixSynthesisError(
            "thread %s: synthesized call chain deeper than %d (target %s)"
            % (thread, _MAX_SYNTH_DEPTH, target),
            thread=thread,
        )
    func = program.functions.get(target)
    if func is None:
        raise PrefixSynthesisError(
            "thread %s: synthesized call to unknown function %s"
            % (thread, target),
            thread=thread,
        )
    bl = paths[target]
    blocks = _ret_path(bl, func)
    if blocks is None:
        raise PrefixSynthesisError(
            "thread %s: no acyclic path to return in %s" % (thread, target),
            thread=thread,
        )
    node = FrameTrace(
        func=target,
        blocks=list(blocks),
        complete=True,
        synthesized=True,
        synth_blocks=len(blocks),
    )
    cost = 3
    for child_target in _call_targets(func, blocks):
        child, child_cost = _synth_activation(
            program, paths, child_target, thread, depth + 1
        )
        node.calls.append(child)
        cost += child_cost
    return node, cost


def _anchored_chain(root):
    chain = []
    frame = root
    while frame is not None and frame.anchored:
        chain.append(frame)
        frame = (
            frame.calls[0]
            if frame.calls and frame.calls[0].anchored
            else None
        )
    return chain


class _FramePlan:
    __slots__ = ("frame", "bl", "func", "entry", "cycle", "acts", "cost")

    def __init__(self, frame, bl, func):
        self.frame = frame
        self.bl = bl
        self.func = func
        self.entry = []  # synthesized blocks before the decoded ones
        self.cycle = None  # padding cycle blocks, if any exist
        self.acts = []  # (position_kind, activation) — prepended calls
        self.cost = 0  # evicted tokens accounted for by this frame


def synthesize_thread_prefix(program, paths, dtp, evicted_tokens):
    """Graft a synthesized prefix onto one thread's anchored suffix decode.

    Mutates the FrameTraces in ``dtp`` in place (prepending blocks and
    activations, setting ``synth_blocks``) and returns a
    :class:`ThreadSynthesis`.  Raises :class:`PrefixSynthesisError` when
    the suffix cannot be grounded in any legal prefix.
    """
    result = ThreadSynthesis(thread=dtp.thread, evicted_tokens=evicted_tokens)
    chain = _anchored_chain(dtp.root)
    result.anchored_frames = len(chain)
    if evicted_tokens and not chain:
        raise PrefixSynthesisError(
            "thread %s: %d tokens evicted but no anchored frames survive"
            % (dtp.thread, evicted_tokens),
            thread=dtp.thread,
        )
    if not chain:
        return result

    plans = []
    for frame in chain:
        func = program.functions.get(frame.func)
        if func is None:
            raise PrefixSynthesisError(
                "thread %s: anchored frame names unknown function %s"
                % (dtp.thread, frame.func),
                thread=dtp.thread,
            )
        plan = _FramePlan(frame, paths[frame.func], func)
        plan.cost = 1  # the frame's evicted ``enter`` token
        if not frame.blocks:
            # Only the ``exit`` token survived (the horizon fell between
            # the path record and the exit record): the activation
            # completed, so any acyclic entry → RET path is a legal
            # reconstruction; its path token was evicted too.
            if not frame.complete:
                raise PrefixSynthesisError(
                    "thread %s: anchored frame %s decoded no blocks and "
                    "never exited" % (dtp.thread, frame.func),
                    thread=dtp.thread,
                )
            entry = _ret_path(plan.bl, func)
            if entry is None:
                raise PrefixSynthesisError(
                    "thread %s: no acyclic path to return in %s"
                    % (dtp.thread, frame.func),
                    thread=dtp.thread,
                )
            plan.entry = entry
            plan.cost += 1
            plans.append(plan)
            continue
        first = frame.blocks[0]
        if first != 0:
            entry = _entry_path(plan.bl, func, first)
            if entry is None:
                raise PrefixSynthesisError(
                    "thread %s: no entry path reaches the back edge into "
                    "block %d of %s" % (dtp.thread, first, frame.func),
                    thread=dtp.thread,
                )
            plan.entry = entry
            plan.cost += 1  # the evicted path token ending at that back edge
            plan.cycle = _cycle_path(plan.bl, func, first)
        plans.append(plan)

    # Activations for call sites inside each synthesized entry path.
    for plan in plans:
        for target in _call_targets(plan.func, plan.entry):
            act, cost = _synth_activation(program, paths, target, dtp.thread)
            plan.acts.append(act)
            plan.cost += cost

    accounted = sum(plan.cost for plan in plans)
    deficit = evicted_tokens - accounted
    if deficit < 0:
        raise PrefixSynthesisError(
            "thread %s: minimal synthesized prefix needs %d tokens but "
            "only %d were evicted" % (dtp.thread, accounted, evicted_tokens),
            thread=dtp.thread,
        )

    # Absorb the remaining evicted tokens as extra loop iterations on the
    # innermost frame that has a padding cycle (each iteration is one
    # evicted path token plus its call sites' activation costs).  This is
    # the bug-report hint at work: the evicted token count pins the
    # iteration count, which the anchor's calls_done then cross-checks.
    if deficit:
        pad = next(
            (plan for plan in reversed(plans) if plan.cycle is not None),
            None,
        )
        if pad is None:
            result.notes.append(
                "%d evicted tokens unaccounted: no frame has a padding "
                "cycle" % deficit
            )
        else:
            cycle_targets = _call_targets(pad.func, pad.cycle)
            per_cycle = 1
            for target in cycle_targets:
                _, cost = _synth_activation(program, paths, target, dtp.thread)
                per_cycle += cost
            n_cycles = deficit // per_cycle
            for _ in range(n_cycles):
                pad.entry = pad.entry + pad.cycle
                for target in cycle_targets:
                    act, _ = _synth_activation(
                        program, paths, target, dtp.thread
                    )
                    pad.acts.append(act)
                pad.cost += per_cycle
                accounted += per_cycle
            result.padding_cycles = n_cycles

    # The anchor's completed-calls count must now be covered: call sites
    # inside the synthesized blocks come first; any remainder completed at
    # call sites that are visible in the already-decoded blocks (the
    # in-flight path decodes across the horizon), whose CALL instructions
    # name the exact targets.
    for plan in plans:
        frame = plan.frame
        synth_sites = len(plan.acts)
        extra = frame.anchor_calls - synth_sites
        if extra < 0:
            raise PrefixSynthesisError(
                "thread %s: anchor says %s completed %d calls before the "
                "horizon but the synthesized prefix contains %d call sites"
                % (dtp.thread, frame.func, frame.anchor_calls, synth_sites),
                thread=dtp.thread,
            )
        if extra:
            decoded_targets = _call_targets(plan.func, frame.blocks)
            if len(decoded_targets) < extra:
                raise PrefixSynthesisError(
                    "thread %s: anchor needs %d completed calls in %s but "
                    "only %d call sites are visible"
                    % (dtp.thread, extra, frame.func, len(decoded_targets)),
                    thread=dtp.thread,
                )
            for target in decoded_targets[:extra]:
                act, cost = _synth_activation(
                    program, paths, target, dtp.thread
                )
                plan.acts.append(act)
                plan.cost += cost
                accounted += cost

    # Graft: prepend blocks and activations onto the decoded suffix.
    for plan in plans:
        frame = plan.frame
        if plan.entry:
            frame.blocks[:0] = plan.entry
            frame.synth_blocks = len(plan.entry)
        if plan.acts:
            frame.calls[:0] = plan.acts
        result.synth_blocks += len(plan.entry)
        result.synth_calls += sum(1 for _ in plan.acts)
    result.accounted_tokens = accounted
    if accounted != evicted_tokens:
        result.notes.append(
            "%d evicted tokens unaccounted" % (evicted_tokens - accounted)
        )
    return result


def synthesize_prefixes(program, paths, decoded, ring_threads):
    """Synthesize prefixes for every lossy thread of a suffix decode.

    ``decoded`` is {thread: DecodedThreadPath} produced by anchored
    decoding; ``ring_threads`` is {thread: info} where info carries at
    least ``evicted_tokens``.  Returns a :class:`SynthesisReport`;
    mutates the decoded traces in place.
    """
    report = SynthesisReport()
    for thread, dtp in sorted(decoded.items()):
        info = ring_threads.get(thread) or {}
        evicted = int(info.get("evicted_tokens", 0))
        if evicted == 0 and not dtp.root.anchored:
            continue
        report.threads[thread] = synthesize_thread_prefix(
            program, paths, dtp, evicted
        )
    return report
