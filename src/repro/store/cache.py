"""Content-addressed analysis cache: skip symexec + encode on re-runs.

The offline front end — decode, symbolic re-execution, constraint
encoding — is a pure function of (program, per-thread path logs, memory
model, prune configuration).  ``repro batch`` re-runs the same corpus
entries over and over (new solver, regression sweeps, CI), so this cache
persists the front end's output inside the corpus directory and replays
it on hits, driving the re-analysis cost per run toward zero.

Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the sha256 of a
canonical JSON *key material* dict::

    {"program":      sha256 of the compiled program,
     "trace":        sha256 over every thread's encoded token stream,
     "memory_model": "sc" | "tso" | "pso",
     "prune":        {"hb": bool, "static": bool}}

The payload is a pickle holding the schema version, the key material,
the thread summaries, the encoded :class:`ConstraintSystem` and the
constraint-stats snapshot.  A lookup whose stored schema version or
prune configuration no longer matches the request is *stale*: it is
deleted, counted (``CacheStats.stale``) and reported as a miss —
``repro corpus verify`` performs the same check corpus-wide.
"""

import hashlib
import json
import os
import pickle

from repro.constraints.stats import CacheStats
from repro.tracing.logfmt import encode_tokens

# Bump whenever the pickled payload shape, the ThreadSummary /
# ConstraintSystem classes, or the encoding rules change incompatibly:
# every existing entry then invalidates itself on first touch.
# v2: ThreadSummary grew the `asserts` field (explore retargeting).
# v3: the FENCE sync SAP kind (weak-memory robustness pass) — cached
#     summaries from before the fence statement existed must not be
#     reused for programs that now compile differently.
ANALYSIS_SCHEMA_VERSION = 3


class AnalysisCache:
    """One cache directory (normally ``<corpus>/cache``) plus counters."""

    def __init__(self, root):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.stats = CacheStats()

    # -- keying ----------------------------------------------------------

    @staticmethod
    def program_fingerprint(program):
        """Content hash of a compiled program.

        Compiled programs are deterministic pickles of their source (the
        compiler is pure), so the pickle is a faithful content address;
        any recompile of identical source maps to the same entry.
        """
        return hashlib.sha256(pickle.dumps(program)).hexdigest()

    @staticmethod
    def trace_fingerprint(recorder):
        """Content hash over every thread's encoded token stream.

        ``recorder`` is anything with a ``logs`` dict of per-thread token
        lists — a live ``PathRecorder`` or a ``StoredTrace``.
        """
        digest = hashlib.sha256()
        for thread in sorted(recorder.logs):
            digest.update(thread.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(encode_tokens(recorder.logs[thread]))
            digest.update(b"\x00")
        return digest.hexdigest()

    @classmethod
    def key_material(cls, program, recorder, memory_model, prune_config):
        return {
            "program": cls.program_fingerprint(program),
            "trace": cls.trace_fingerprint(recorder),
            "memory_model": memory_model,
            "prune": dict(prune_config),
        }

    @staticmethod
    def key_of(material):
        canon = json.dumps(material, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".pkl")

    # -- lookups ---------------------------------------------------------

    def load(self, material):
        """Return the payload dict for ``material``, or None on a miss.

        Stale entries (schema or prune-config mismatch, unreadable
        pickle) are deleted and counted as both ``stale`` and a miss.
        """
        key = self.key_of(material)
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
            payload = pickle.loads(blob)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            payload = None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != ANALYSIS_SCHEMA_VERSION
            or payload.get("material", {}).get("prune") != material["prune"]
        ):
            self._discard(path)
            self.stats.stale += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(blob)
        return payload

    def store(self, material, summaries, system, stats_dict=None):
        """Persist one front-end result; returns the entry key."""
        key = self.key_of(material)
        path = self._path(key)
        payload = {
            "schema": ANALYSIS_SCHEMA_VERSION,
            "material": material,
            "summaries": summaries,
            "system": system,
            "stats": stats_dict or {},
        }
        blob = pickle.dumps(payload)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)  # atomic: readers never see a torn entry
        self.stats.bytes_written += len(blob)
        return key

    @staticmethod
    def _discard(path):
        try:
            os.remove(path)
        except OSError:
            pass

    # -- maintenance -----------------------------------------------------

    def entry_paths(self):
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in sorted(filenames):
                if filename.endswith(".pkl"):
                    found.append(os.path.join(dirpath, filename))
        return sorted(found)

    def verify(self, remove=True):
        """Check every entry; returns [(path, problem), ...] for the bad.

        An entry is bad when its pickle is unreadable, its stored schema
        version is not the current one, or the sha256 of its stored key
        material no longer matches its filename (so the payload could
        never be legitimately returned for its key).  Bad entries are
        deleted when ``remove`` is set — the ``repro corpus verify``
        behavior.
        """
        problems = []
        for path in self.entry_paths():
            problem = None
            try:
                with open(path, "rb") as fh:
                    payload = pickle.loads(fh.read())
            except Exception as exc:
                problem = "unreadable: %s" % (exc,)
                payload = None
            if problem is None and (
                not isinstance(payload, dict)
                or payload.get("schema") != ANALYSIS_SCHEMA_VERSION
            ):
                problem = "schema %r != current %d" % (
                    payload.get("schema") if isinstance(payload, dict) else None,
                    ANALYSIS_SCHEMA_VERSION,
                )
            if problem is None:
                expected = os.path.basename(path)[: -len(".pkl")]
                if self.key_of(payload.get("material", {})) != expected:
                    problem = "key material does not hash to the filename"
            if problem is not None:
                problems.append((path, problem))
                if remove:
                    self._discard(path)
                    self.stats.stale += 1
        return problems


class SharedAnalysisCache(AnalysisCache):
    """The fleet-wide shared cache tier: content addressing + a budget.

    One cache directory serves every shard of a reproduction fleet and
    every worker process draining its queue, so unlike the per-corpus
    :class:`AnalysisCache` it cannot grow without bound.  This subclass
    adds what a shared tier needs:

    * a **size budget** (``max_bytes``): after every store, total payload
      size is brought back under budget by deleting least-recently-used
      entries (counted in ``stats.evictions``);
    * an **LRU index** (``index.json`` at the cache root) mapping key →
      ``[size, seq]`` where ``seq`` is a monotonically increasing access
      stamp.  The index is written atomically (tmp + fsync + replace, the
      container's crash-safety discipline) so a killed worker never
      leaves a torn index behind.

    The index is advisory, never authoritative: it is reconciled against
    the entry files on every update, so a missing/unreadable index — or
    one another worker clobbered — only skews the LRU order.  Entries the
    index has never seen get access stamp 0 and are evicted first; an
    entry evicted while a concurrent reader held its key is simply a
    miss on that reader's next lookup.
    """

    INDEX_NAME = "index.json"

    def __init__(self, root, max_bytes=None):
        super().__init__(root)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None: unbounded)")
        self.max_bytes = max_bytes

    # -- the LRU index ---------------------------------------------------

    def _index_path(self):
        return os.path.join(self.root, self.INDEX_NAME)

    def _read_index(self):
        try:
            with open(self._index_path(), "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        index = {}
        for key, row in raw.items():
            if (
                isinstance(row, list)
                and len(row) == 2
                and all(isinstance(v, int) for v in row)
            ):
                index[key] = row
        return index

    def _write_index(self, index):
        path = self._index_path()
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(index, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _reconcile(self, index):
        """Make the index agree with the entry files actually on disk."""
        on_disk = {
            os.path.basename(path)[: -len(".pkl")]: path
            for path in self.entry_paths()
        }
        for key in list(index):
            if key not in on_disk:
                del index[key]
        for key, path in on_disk.items():
            if key not in index:
                try:
                    index[key] = [os.path.getsize(path), 0]
                except OSError:
                    pass
        return index

    def _touch(self, key, evict=False):
        index = self._reconcile(self._read_index())
        if key in index:
            seq = 1 + max(row[1] for row in index.values())
            index[key][1] = seq
        if evict and self.max_bytes is not None:
            self._evict(index, protect=key)
        self._write_index(index)

    def _evict(self, index, protect=None):
        """Delete LRU entries until the cache fits its byte budget.

        ``protect`` (the key just stored or hit) is never evicted — a
        budget smaller than one entry must not thrash the entry it was
        just asked to keep.
        """
        total = sum(row[0] for row in index.values())
        victims = sorted(
            (key for key in index if key != protect),
            key=lambda key: (index[key][1], key),
        )
        for key in victims:
            if total <= self.max_bytes:
                break
            total -= index[key][0]
            self._discard(self._path(key))
            del index[key]
            self.stats.evictions += 1

    # -- budget-aware lookups --------------------------------------------

    def load(self, material):
        payload = super().load(material)
        if payload is not None:
            self._touch(self.key_of(material))
        return payload

    def store(self, material, summaries, system, stats_dict=None):
        key = super().store(material, summaries, system, stats_dict=stats_dict)
        self._touch(key, evict=True)
        return key

    def usage(self):
        """{entries, bytes, max_bytes} for the entries on disk now."""
        index = self._reconcile(self._read_index())
        return {
            "entries": len(index),
            "bytes": sum(row[0] for row in index.values()),
            "max_bytes": self.max_bytes,
        }
