"""The ``.clap`` on-disk trace container.

A container holds every thread's :mod:`repro.tracing.logfmt` token stream
of one recorded execution, split into self-describing chunks so a crashed
recorder leaves a usable prefix:

::

    file   := HEADER chunk* footer?
    HEADER := b"CLAPTRC1"
    chunk  := 0xC5  varint(name_len) name  varint(flags)
              varint(n_tokens) varint(raw_len) varint(comp_len)
              comp_bytes  crc32_le32
    footer := 0xF7  varint(payload_len)  payload  crc32_le32(payload)
              le32(footer_size)  b"CLAPEND1"

``comp_bytes`` is the zlib compression of ``raw_len`` bytes of logfmt
encoding for ``n_tokens`` tokens of thread ``name``; the CRC covers the
chunk from its marker byte through ``comp_bytes``, so any torn or
bit-flipped write is detected.  Chunks of different threads interleave in
flush order.  The footer payload is a varint-encoded index (thread name
table, per-chunk ``(name, offset, size, n_tokens, flags)`` records) plus
a JSON metadata blob; ``footer_size`` counts from the 0xF7 marker through
the payload CRC so a reader can locate the footer from the end of the
file without scanning.

Durability invariant: the writer flushes after every chunk and only
writes the footer on a clean :meth:`ClapWriter.close`.  A file that ends
without ``CLAPEND1`` is *truncated but not lost* — every chunk whose CRC
checks out is valid, and :mod:`repro.store.recover` reconstructs a
decodable trace from that prefix.
"""

import json
import os
import struct
import zlib

from repro.tracing.logfmt import (
    TraceDecodeError,
    decode_tokens,
    encode_tokens,
    read_varint,
    write_varint,
)

MAGIC = b"CLAPTRC1"
END_MAGIC = b"CLAPEND1"
CHUNK_MARKER = 0xC5
FOOTER_MARKER = 0xF7

# Chunk flags.
CHUNK_FINAL = 1  # flushed by finalize(): contains the thread's log tail
CHUNK_RECOVERED = 2  # rewritten by recovery with synthesized partial tokens
CHUNK_RING = 4  # flight-recorder suffix segment: the log's prefix was evicted

FORMAT_VERSION = 1


class ContainerError(Exception):
    """A structural problem with a ``.clap`` file."""


class ChunkInfo:
    """One parsed chunk: header fields plus the raw (still encoded) bytes."""

    __slots__ = ("offset", "size", "thread", "flags", "n_tokens", "raw")

    def __init__(self, offset, size, thread, flags, n_tokens, raw):
        self.offset = offset
        self.size = size
        self.thread = thread
        self.flags = flags
        self.n_tokens = n_tokens
        self.raw = raw

    def tokens(self):
        return decode_tokens(self.raw)

    def __repr__(self):
        return "ChunkInfo(@%d %s %d tokens, flags=%d)" % (
            self.offset,
            self.thread,
            self.n_tokens,
            self.flags,
        )


class ClapWriter:
    """Streaming ``.clap`` writer: every chunk is durable once written."""

    def __init__(self, path, compress_level=6):
        self.path = path
        self.compress_level = compress_level
        self._fh = open(path, "wb")
        self._fh.write(MAGIC)
        self._fh.flush()
        self._chunks = []  # (thread, offset, size, n_tokens, flags)
        self._closed = False

    def write_chunk(self, thread, tokens, final=False, flags=0):
        """Append one chunk of ``tokens`` for ``thread`` and flush it."""
        if self._closed:
            raise ContainerError("writer for %s is closed" % self.path)
        if final:
            flags |= CHUNK_FINAL
        if not tokens and not flags:
            # Nothing to persist and nothing to mark.  A *final* (or
            # otherwise flagged) empty chunk is still written: the final
            # flag is what distinguishes a cleanly finished log from a
            # crashed writer's truncated one.
            return
        raw = encode_tokens(tokens)
        comp = zlib.compress(raw, self.compress_level)
        chunk = bytearray()
        chunk.append(CHUNK_MARKER)
        name = thread.encode("utf-8")
        write_varint(chunk, len(name))
        chunk.extend(name)
        write_varint(chunk, flags)
        write_varint(chunk, len(tokens))
        write_varint(chunk, len(raw))
        write_varint(chunk, len(comp))
        chunk.extend(comp)
        chunk.extend(struct.pack("<I", zlib.crc32(bytes(chunk)) & 0xFFFFFFFF))
        offset = self._fh.tell()
        self._fh.write(chunk)
        self._fh.flush()
        self._chunks.append((thread, offset, len(chunk), len(tokens), flags))

    def close(self, meta=None):
        """Write the varint-indexed footer and close the file."""
        if self._closed:
            return
        names = []
        name_idx = {}
        for thread, _, _, _, _ in self._chunks:
            if thread not in name_idx:
                name_idx[thread] = len(names)
                names.append(thread)
        payload = bytearray()
        write_varint(payload, len(names))
        for name in names:
            raw = name.encode("utf-8")
            write_varint(payload, len(raw))
            payload.extend(raw)
        write_varint(payload, len(self._chunks))
        for thread, offset, size, n_tokens, flags in self._chunks:
            write_varint(payload, name_idx[thread])
            write_varint(payload, offset)
            write_varint(payload, size)
            write_varint(payload, n_tokens)
            write_varint(payload, flags)
        meta_bytes = json.dumps(
            dict(meta or {}, format=FORMAT_VERSION), sort_keys=True
        ).encode("utf-8")
        write_varint(payload, len(meta_bytes))
        payload.extend(meta_bytes)

        footer = bytearray()
        footer.append(FOOTER_MARKER)
        write_varint(footer, len(payload))
        footer.extend(payload)
        footer.extend(struct.pack("<I", zlib.crc32(bytes(payload)) & 0xFFFFFFFF))
        self._fh.write(footer)
        self._fh.write(struct.pack("<I", len(footer)))
        self._fh.write(END_MAGIC)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._closed = True

    # Convenience: ``with ClapWriter(...) as w`` closes with empty meta on
    # success and leaves a truncated-but-recoverable file on error.
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.close()
        else:
            self._fh.close()
            self._closed = True
        return False


def _parse_chunk(data, pos):
    """Parse one chunk at ``pos``; returns (ChunkInfo, new_pos).

    Raises :class:`ContainerError` when the bytes at ``pos`` are not a
    complete, CRC-valid chunk (truncation or corruption).
    """
    start = pos
    n = len(data)
    if data[pos] != CHUNK_MARKER:
        raise ContainerError("no chunk marker at offset %d" % pos)
    pos += 1
    try:
        name_len, pos = read_varint(data, pos)
        if pos + name_len > n:
            raise ContainerError("truncated thread name at offset %d" % pos)
        thread = data[pos : pos + name_len].decode("utf-8")
        pos += name_len
        flags, pos = read_varint(data, pos)
        n_tokens, pos = read_varint(data, pos)
        raw_len, pos = read_varint(data, pos)
        comp_len, pos = read_varint(data, pos)
    except TraceDecodeError as exc:
        raise ContainerError(
            "truncated chunk header at offset %d" % start
        ) from exc
    if pos + comp_len + 4 > n:
        raise ContainerError("truncated chunk body at offset %d" % start)
    comp = data[pos : pos + comp_len]
    pos += comp_len
    (crc,) = struct.unpack("<I", data[pos : pos + 4])
    pos += 4
    if zlib.crc32(data[start : pos - 4]) & 0xFFFFFFFF != crc:
        raise ContainerError("chunk CRC mismatch at offset %d" % start)
    try:
        raw = zlib.decompress(comp)
    except zlib.error as exc:
        raise ContainerError(
            "chunk at offset %d does not decompress: %s" % (start, exc)
        ) from exc
    if len(raw) != raw_len:
        raise ContainerError(
            "chunk at offset %d: raw length %d != declared %d"
            % (start, len(raw), raw_len)
        )
    return ChunkInfo(start, pos - start, thread, flags, n_tokens, raw), pos


def _parse_footer(data):
    """Parse the footer if present and valid.

    Returns ``(index, meta, footer_offset)`` or ``(None, None, None)``;
    ``index`` is a list of (thread, offset, size, n_tokens, flags).
    """
    if len(data) < len(MAGIC) + 4 + len(END_MAGIC):
        return None, None, None
    if data[-len(END_MAGIC) :] != END_MAGIC:
        return None, None, None
    (footer_size,) = struct.unpack(
        "<I", data[-len(END_MAGIC) - 4 : -len(END_MAGIC)]
    )
    footer_off = len(data) - len(END_MAGIC) - 4 - footer_size
    if footer_off < len(MAGIC) or data[footer_off] != FOOTER_MARKER:
        return None, None, None
    try:
        payload_len, pos = read_varint(data, footer_off + 1)
        payload = data[pos : pos + payload_len]
        if len(payload) != payload_len:
            return None, None, None
        (crc,) = struct.unpack("<I", data[pos + payload_len : pos + payload_len + 4])
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None, None, None
        names = []
        p = 0
        n_names, p = read_varint(payload, p)
        for _ in range(n_names):
            ln, p = read_varint(payload, p)
            names.append(payload[p : p + ln].decode("utf-8"))
            p += ln
        index = []
        n_chunks, p = read_varint(payload, p)
        for _ in range(n_chunks):
            idx, p = read_varint(payload, p)
            offset, p = read_varint(payload, p)
            size, p = read_varint(payload, p)
            n_tokens, p = read_varint(payload, p)
            flags, p = read_varint(payload, p)
            index.append((names[idx], offset, size, n_tokens, flags))
        meta_len, p = read_varint(payload, p)
        meta = json.loads(payload[p : p + meta_len].decode("utf-8"))
    except (TraceDecodeError, IndexError, ValueError, UnicodeDecodeError):
        return None, None, None
    return index, meta, footer_off


class ClapReader:
    """A parsed ``.clap`` file: valid chunks, footer state, problems.

    ``complete`` is True only when the footer is present and consistent
    and every chunk parses with a valid CRC; otherwise ``problems`` lists
    what is wrong and ``chunks`` holds the valid prefix (the input to
    recovery).
    """

    def __init__(self, path, chunks, meta, complete, problems):
        self.path = path
        self.chunks = chunks
        self.meta = meta or {}
        self.complete = complete
        self.problems = problems

    @classmethod
    def open(cls, path):
        with open(path, "rb") as fh:
            data = fh.read()
        problems = []
        if data[: len(MAGIC)] != MAGIC:
            return cls(path, [], {}, False, ["bad magic (not a .clap file)"])
        index, meta, footer_off = _parse_footer(data)
        end = footer_off if footer_off is not None else len(data)
        chunks = []
        pos = len(MAGIC)
        while pos < end:
            if data[pos] == FOOTER_MARKER:
                # A footer marker before the indexed footer position: only
                # legal when the footer failed to parse (end == len(data)).
                break
            try:
                chunk, pos = _parse_chunk(data, pos)
            except ContainerError as exc:
                problems.append(str(exc))
                break
            chunks.append(chunk)
        if index is None:
            problems.append("footer missing or invalid (truncated write?)")
        else:
            recorded = [
                (c.thread, c.offset, c.size, c.n_tokens, c.flags) for c in chunks
            ]
            if recorded != index:
                problems.append("footer index does not match chunk scan")
        # Token streams must decode at the logfmt level chunk by chunk.
        for chunk in chunks:
            try:
                tokens = chunk.tokens()
            except TraceDecodeError as exc:
                problems.append(
                    "chunk at offset %d: %s" % (chunk.offset, exc)
                )
                continue
            if len(tokens) != chunk.n_tokens:
                problems.append(
                    "chunk at offset %d: %d tokens != declared %d"
                    % (chunk.offset, len(tokens), chunk.n_tokens)
                )
        return cls(path, chunks, meta, not problems, problems)

    def thread_tokens(self):
        """Concatenate every valid chunk's tokens per thread, in file order."""
        logs = {}
        for chunk in self.chunks:
            try:
                tokens = chunk.tokens()
            except TraceDecodeError:
                continue
            logs.setdefault(chunk.thread, []).extend(tokens)
        return logs

    def threads(self):
        return sorted({c.thread for c in self.chunks})


def read_meta(path):
    """Read only the footer metadata (fast path; None when unavailable)."""
    with open(path, "rb") as fh:
        data = fh.read()
    _, meta, _ = _parse_footer(data)
    return meta


def compact_container(src, dst, compress_level=9):
    """Rewrite ``src`` with one maximally-compressed chunk per thread.

    Interim streaming chunks are merged, so the rewritten file trades the
    crash-recoverable chunk granularity for minimum size — the right
    trade once an entry is archived.  Returns (old_size, new_size).
    """
    reader = ClapReader.open(src)
    if not reader.complete:
        raise ContainerError(
            "refusing to compact damaged container %s: %s"
            % (src, "; ".join(reader.problems))
        )
    logs = reader.thread_tokens()
    flags_by_thread = {}
    for chunk in reader.chunks:
        flags_by_thread[chunk.thread] = chunk.flags
    writer = ClapWriter(dst, compress_level=compress_level)
    for thread in sorted(logs):
        flags = flags_by_thread.get(thread, 0)
        final = bool(flags & CHUNK_FINAL)
        # Keep the ring marker: a merged flight-recorder suffix is still a
        # suffix, and loaders must never mistake it for a complete log.
        writer.write_chunk(
            thread, logs[thread], final=final, flags=flags & CHUNK_RING
        )
    meta = dict(reader.meta)
    meta.pop("format", None)
    writer.close(meta=meta)
    return os.path.getsize(src), os.path.getsize(dst)


def flip_byte(path, offset, mask=0x01):
    """XOR one byte in place — corruption injection for tests and CI."""
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        if not byte:
            raise ValueError("offset %d beyond end of %s" % (offset, path))
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ mask]))
        fh.flush()
