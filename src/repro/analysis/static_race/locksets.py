"""Interprocedural lockset dataflow over MiniLang CFGs (Locksmith-style).

Two variants of the same engine:

* **must** mode (``meet`` = set intersection): at a program point, the set
  of mutexes *provably held on every path*.  Used by the race detector —
  under-approximating held locks can only add race reports, never hide
  one, so the analysis stays conservative.
* **may** mode (``meet`` = union): mutexes *possibly held* — used by the
  lock-order (deadlock) pass, where over-approximating held locks can
  only add deadlock edges.

Transfer functions: ``LOCK m`` adds ``m``; ``UNLOCK m`` removes it;
``WAIT cv, m`` releases and re-acquires ``m`` (net identity at this
granularity — the critical-section *split* it causes matters only to the
dynamic pruning layer, which recovers it from the runtime's desugared
unlock/wait/lock SAP triple).  Calls apply the callee's gen/kill summary.

Interprocedural strategy: context-insensitive entry sets.  A thread
root's entry lockset is empty (threads start lock-free); a called
function's entry is the meet over all its call sites.  The whole program
iterates to a fixpoint, so mutually recursive call/entry/summary updates
settle; with intersection meets the result under-approximates every real
context (sound for must), with union it over-approximates (sound for may).
"""

from dataclasses import dataclass

from repro.minilang import bytecode as bc
from repro.analysis.escape import thread_roots

MUST = "must"
MAY = "may"


@dataclass
class LocksetResult:
    """Per-point held locksets plus per-function summaries."""

    mode: str
    # (func, block, index) -> frozenset of mutex names held BEFORE the instr.
    at_point: dict
    # func -> frozenset entry lockset (None: never reached).
    entries: dict
    # func -> frozenset exit lockset.
    exits: dict
    # False when the fixpoint hit its round cap; all locksets are then
    # bottom (empty) so consumers see no held locks rather than a
    # partially-converged over-approximation.
    converged: bool = True

    def held_before(self, point):
        return self.at_point.get(point, frozenset())


def compute_locksets(program, mode=MUST):
    """Run the lockset dataflow over every reachable function."""
    if mode not in (MUST, MAY):
        raise ValueError("mode must be 'must' or 'may'")
    engine = _Engine(program, mode)
    converged = engine.solve()
    if not converged:
        # Unconverged must-mode state can over-approximate held locks
        # (identity call-effect for an unstable callee that actually
        # unlocks), which would let the race detector mint common-lock
        # verdicts the pruner treats as proof.  Fail safe instead: bottom
        # everywhere — no common-lock verdicts, no pruning — mirroring
        # the cycle fallback in ``constraints.prune._must_order_closure``.
        return LocksetResult(
            mode=mode, at_point={}, entries={}, exits={}, converged=False
        )
    return LocksetResult(
        mode=mode,
        at_point=engine.at_point,
        entries=engine.entries,
        exits=engine.exits,
    )


class _Engine:
    def __init__(self, program, mode):
        self.program = program
        self.mode = mode
        self.roots = set(thread_roots(program))
        self.entries = {}  # func -> frozenset | absent (unreached)
        self.exits = {}  # func -> frozenset
        self.at_point = {}
        for root in self.roots:
            if root in program.functions:
                self.entries[root] = frozenset()

    def meet(self, a, b):
        return (a & b) if self.mode == MUST else (a | b)

    def solve(self):
        # Whole-program rounds until entries/exits stabilise.  Each round
        # re-derives call-site contributions from scratch so stale meets
        # never stick.  The lattice is finite (subsets of the mutex set per
        # function) and per-round updates are deterministic, so a generous
        # round cap doubles as a safety net for pathological recursion.
        # Returns True on a reached fixpoint; False if the cap ran out,
        # in which case the caller must discard the partial state.
        for _ in range(len(self.program.functions) * 2 + 8):
            new_entries = {
                root: frozenset()
                for root in self.roots
                if root in self.program.functions
            }
            changed = False
            for name in sorted(self.entries):
                entry = self.entries[name]
                exit_set = self._analyze_function(name, entry, new_entries)
                if self.exits.get(name) != exit_set:
                    self.exits[name] = exit_set
                    changed = True
            for name, entry in new_entries.items():
                if self.entries.get(name) != entry:
                    self.entries[name] = entry
                    changed = True
            if not changed:
                return True
        return False

    def _call_effect(self, callee, state):
        """Apply the callee's gen/kill summary to the caller's lockset."""
        entry = self.entries.get(callee)
        exit_set = self.exits.get(callee)
        if entry is None or exit_set is None:
            return state  # not analyzed yet: identity, refined next round
        gen = exit_set - entry
        kill = entry - exit_set
        return (state - kill) | gen

    def _transfer(self, instr, state, func_name, point, new_entries):
        self.at_point[point] = state
        op = instr.op
        if op == bc.LOCK:
            return state | {instr.arg}
        if op == bc.UNLOCK:
            return state - {instr.arg}
        if op == bc.CALL:
            callee = instr.arg
            if callee in self.program.functions:
                if callee in new_entries:
                    new_entries[callee] = self.meet(new_entries[callee], state)
                else:
                    new_entries[callee] = state
                return self._call_effect(callee, state)
        return state

    def _analyze_function(self, name, entry, new_entries):
        func = self.program.functions[name]
        in_states = {0: entry}
        worklist = [0]
        exit_state = None
        while worklist:
            block_id = worklist.pop()
            block = func.blocks[block_id]
            state = in_states[block_id]
            for idx, instr in enumerate(block.instrs):
                point = (name, block_id, idx)
                state = self._transfer(instr, state, name, point, new_entries)
                if instr.op == bc.RET:
                    exit_state = (
                        state if exit_state is None else self.meet(exit_state, state)
                    )
            for succ in block.successors():
                prev = in_states.get(succ)
                merged = state if prev is None else self.meet(prev, state)
                if merged != prev:
                    in_states[succ] = merged
                    worklist.append(succ)
        # A function that never returns (or whose RETs are unreachable)
        # contributes an identity effect.
        return entry if exit_state is None else exit_state
