"""Def-use value flow over MiniLang operand stacks, plus must-init facts.

Two small dataflow engines feed the SR3xx bug-pattern passes
(:mod:`repro.analysis.static_race.patterns`):

* **Value flow** (:func:`compute_value_flow`): per function, an abstract
  interpretation of the operand stack that tracks, for every stack slot
  and local, the set of *global-read points* that flowed into the value.
  Its outputs are ``write_deps`` (which reads feed each global write —
  the raw material for read-modify-write span detection) and
  ``branch_deps`` (which reads feed each branch condition — the raw
  material for check-then-act detection).  The analysis is
  intraprocedural: values returned from calls carry no read provenance,
  which can only *hide* RMW spans, never invent one — fine for a
  bug-pattern reporter that must not cry wolf.

* **Must-init** (:func:`compute_must_writes`): interprocedural
  "definitely written before this point" sets per program point, with the
  same context-insensitive entry-meet strategy as the lockset engine
  (:mod:`repro.analysis.static_race.locksets`): a thread root starts with
  nothing written, a callee's entry is the intersection over its call
  sites, and calls apply the callee's must-write summary.  Intersection
  meets under-approximate, so "v is must-init here" is trustworthy while
  its absence merely *suspects* a use-before-init.

:func:`span_points` enumerates the program points on any intra-function
path between two sites — the region a lock must cover for an RMW span to
be atomic.
"""

from dataclasses import dataclass

from repro.minilang import bytecode as bc
from repro.analysis.escape import thread_roots

_EMPTY = frozenset()


@dataclass
class FunctionValueFlow:
    """Read-provenance facts for one function."""

    func: str
    # (func, block, index) of a global write -> frozenset of global-read
    # points whose values flow into the stored value.
    write_deps: dict
    # (func, block, index) of a BRANCH -> frozenset of global-read points
    # whose values flow into the condition.
    branch_deps: dict


def compute_value_flow(program):
    """{func name: FunctionValueFlow} for every function."""
    return {
        name: _FunctionFlow(program, name).run()
        for name in sorted(program.functions)
    }


class _FunctionFlow:
    """Fixpoint over (stack of read-sets, locals of read-sets)."""

    def __init__(self, program, name):
        self.program = program
        self.name = name
        self.func = program.functions[name]
        self.write_deps = {}
        self.branch_deps = {}

    def run(self):
        in_states = {0: ((), {})}
        worklist = [0]
        while worklist:
            block_id = worklist.pop()
            block = self.func.blocks[block_id]
            stack, locals_ = in_states[block_id]
            stack, locals_ = list(stack), dict(locals_)
            for idx, instr in enumerate(block.instrs):
                self._transfer(instr, (block_id, idx), stack, locals_)
            out = (tuple(stack), locals_)
            for succ in block.successors():
                prev = in_states.get(succ)
                merged = out if prev is None else _merge(prev, out)
                if merged != prev:
                    in_states[succ] = merged
                    worklist.append(succ)
        return FunctionValueFlow(
            func=self.name,
            write_deps=self.write_deps,
            branch_deps=self.branch_deps,
        )

    def _pop(self, stack):
        return stack.pop() if stack else _EMPTY

    def _note(self, table, point, deps):
        table[point] = table.get(point, _EMPTY) | deps

    def _transfer(self, instr, pos, stack, locals_):
        op = instr.op
        point = (self.name, pos[0], pos[1])
        if op == bc.CONST:
            stack.append(_EMPTY)
        elif op == bc.LOAD_LOCAL:
            stack.append(locals_.get(instr.arg, _EMPTY))
        elif op == bc.STORE_LOCAL:
            locals_[instr.arg] = self._pop(stack)
        elif op == bc.LOAD_GLOBAL:
            stack.append(frozenset({point}) if self._is_data(instr.arg) else _EMPTY)
        elif op == bc.LOAD_ELEM:
            idx_deps = self._pop(stack)
            base = frozenset({point}) if self._is_data(instr.arg) else _EMPTY
            stack.append(base | idx_deps)
        elif op == bc.STORE_GLOBAL:
            deps = self._pop(stack)
            if self._is_data(instr.arg):
                self._note(self.write_deps, point, deps)
        elif op == bc.STORE_ELEM:
            deps = self._pop(stack) | self._pop(stack)
            if self._is_data(instr.arg):
                self._note(self.write_deps, point, deps)
        elif op == bc.BINOP:
            stack.append(self._pop(stack) | self._pop(stack))
        elif op == bc.UNOP:
            stack.append(self._pop(stack))
        elif op == bc.BRANCH:
            self._note(self.branch_deps, point, self._pop(stack))
        elif op in (bc.CALL, bc.SPAWN):
            nargs = instr.arg2 or 0
            for _ in range(nargs):
                self._pop(stack)
            stack.append(_EMPTY)  # intraprocedural: callee values are opaque
        elif op in (bc.POP, bc.ASSERT, bc.ASSUME, bc.JOIN, bc.RET):
            self._pop(stack)
        elif op == bc.PRINT:
            for _ in range(instr.arg or 0):
                self._pop(stack)
        # LOCK/UNLOCK/WAIT/SIGNAL/BROADCAST/YIELD/JUMP: no stack effect.

    def _is_data(self, name):
        info = self.program.symbols.globals.get(name)
        return info is not None and info.is_data


def _merge(a, b):
    stack_a, locals_a = a
    stack_b, locals_b = b
    depth = max(len(stack_a), len(stack_b))
    stack = tuple(
        (stack_a[i] if i < len(stack_a) else _EMPTY)
        | (stack_b[i] if i < len(stack_b) else _EMPTY)
        for i in range(depth)
    )
    locals_ = {}
    for key in set(locals_a) | set(locals_b):
        merged = locals_a.get(key, _EMPTY) | locals_b.get(key, _EMPTY)
        if merged:
            locals_[key] = merged
    return stack, locals_


# -- span geometry -------------------------------------------------------


def span_points(func_obj, func_name, start, end):
    """Program points on any intra-function path from ``start`` to ``end``.

    ``start``/``end`` are (func, block, index) points inside ``func_obj``
    (endpoints included).  Returns None when ``end`` is not forward
    reachable from ``start`` (e.g. a loop back-edge pairing); callers
    then fall back to endpoint locksets only.
    """
    _f, sb, si = start
    _f2, eb, ei = end
    if sb == eb and si <= ei:
        # Same-block span: the direct segment IS the span.  (A loop may
        # also connect the pair the long way round, but the value-flow
        # pairing is same-iteration by construction, so charging the
        # loop-around path would only invent coverage gaps.)
        return {(func_name, sb, i) for i in range(si, ei + 1)}
    # Reachability over the *acyclic* CFG (loop back edges removed): the
    # value-flow pairing is same-iteration, so a loop-around path from
    # the read back to the write is never the span being checked and
    # would only charge the span with unlocked loop-management code.
    skip = _back_edges(func_obj)
    forward = _forward_reach(func_obj, sb, skip)
    if eb not in forward:
        return None
    backward = _backward_reach(func_obj, eb, skip)  # blocks reaching eb

    points = set()
    # Middle blocks: on a start->end path, so every instruction counts.
    for block in func_obj.blocks:
        if block.id in forward and block.id in backward:
            if block.id == sb or block.id == eb:
                continue  # endpoint blocks get partial ranges below
            points |= {
                (func_name, block.id, i) for i in range(len(block.instrs))
            }
    # Tail of the start block and head of the end block.
    points |= {
        (func_name, sb, i)
        for i in range(si, len(func_obj.blocks[sb].instrs))
    }
    points |= {(func_name, eb, i) for i in range(0, ei + 1)}
    return points


def _back_edges(func_obj):
    """DFS back edges of the CFG from the entry block."""
    back = set()
    color = {}  # block -> 1 (on stack) | 2 (done)
    stack = [(0, iter(func_obj.blocks[0].successors()))]
    color[0] = 1
    while stack:
        node, succs = stack[-1]
        advanced = False
        for succ in succs:
            state = color.get(succ)
            if state == 1:
                back.add((node, succ))
            elif state is None:
                color[succ] = 1
                stack.append((succ, iter(func_obj.blocks[succ].successors())))
                advanced = True
                break
        if not advanced:
            color[node] = 2
            stack.pop()
    return back


def _forward_reach(func_obj, start, skip_edges):
    """Blocks strictly reachable from ``start`` over non-back edges."""
    seen = set()
    stack = [
        s
        for s in func_obj.blocks[start].successors()
        if (start, s) not in skip_edges
    ]
    while stack:
        b = stack.pop()
        if b in seen:
            continue
        seen.add(b)
        stack.extend(
            s
            for s in func_obj.blocks[b].successors()
            if (b, s) not in skip_edges
        )
    return seen


def _backward_reach(func_obj, end, skip_edges):
    preds = {}
    for block in func_obj.blocks:
        for succ in block.successors():
            if (block.id, succ) not in skip_edges:
                preds.setdefault(succ, set()).add(block.id)
    seen = set()
    stack = list(preds.get(end, ()))
    while stack:
        b = stack.pop()
        if b in seen:
            continue
        seen.add(b)
        stack.extend(preds.get(b, ()))
    return seen | {end}


# -- must-init ------------------------------------------------------------


@dataclass
class MustWriteResult:
    """Per-point sets of globals definitely written earlier by the same
    thread (context-insensitive, intersection meets — see module doc)."""

    at_point: dict  # (func, block, index) -> frozenset of var names
    entries: dict
    exits: dict
    converged: bool = True

    def written_before(self, point):
        return self.at_point.get(point, frozenset())


def compute_must_writes(program):
    """Run the must-written dataflow over every reachable function."""
    engine = _MustWriteEngine(program)
    if not engine.solve():
        return MustWriteResult(
            at_point={}, entries={}, exits={}, converged=False
        )
    return MustWriteResult(
        at_point=engine.at_point, entries=engine.entries, exits=engine.exits
    )


class _MustWriteEngine:
    """Same interprocedural skeleton as the lockset engine, with a
    gen-only transfer (writes are never killed) and intersection meets."""

    def __init__(self, program):
        self.program = program
        self.roots = set(thread_roots(program))
        self.entries = {}
        self.exits = {}
        self.at_point = {}
        for root in self.roots:
            if root in program.functions:
                self.entries[root] = frozenset()

    def solve(self):
        for _ in range(len(self.program.functions) * 2 + 8):
            new_entries = {
                root: frozenset()
                for root in self.roots
                if root in self.program.functions
            }
            changed = False
            for name in sorted(self.entries):
                entry = self.entries[name]
                exit_set = self._analyze_function(name, entry, new_entries)
                if self.exits.get(name) != exit_set:
                    self.exits[name] = exit_set
                    changed = True
            for name, entry in new_entries.items():
                if self.entries.get(name) != entry:
                    self.entries[name] = entry
                    changed = True
            if not changed:
                return True
        return False

    def _call_effect(self, callee, state):
        entry = self.entries.get(callee)
        exit_set = self.exits.get(callee)
        if entry is None or exit_set is None:
            return state
        return state | (exit_set - entry)

    def _transfer(self, instr, state, point, new_entries):
        self.at_point[point] = state
        op = instr.op
        if op in (bc.STORE_GLOBAL, bc.STORE_ELEM):
            info = self.program.symbols.globals.get(instr.arg)
            if info is not None and info.is_data:
                return state | {instr.arg}
        elif op == bc.CALL:
            callee = instr.arg
            if callee in self.program.functions:
                if callee in new_entries:
                    new_entries[callee] = new_entries[callee] & state
                else:
                    new_entries[callee] = state
                return self._call_effect(callee, state)
        return state

    def _analyze_function(self, name, entry, new_entries):
        func = self.program.functions[name]
        in_states = {0: entry}
        worklist = [0]
        exit_state = None
        while worklist:
            block_id = worklist.pop()
            block = func.blocks[block_id]
            state = in_states[block_id]
            for idx, instr in enumerate(block.instrs):
                point = (name, block_id, idx)
                state = self._transfer(instr, state, point, new_entries)
                if instr.op == bc.RET:
                    exit_state = (
                        state if exit_state is None else (exit_state & state)
                    )
            for succ in block.successors():
                prev = in_states.get(succ)
                merged = state if prev is None else (prev & state)
                if merged != prev:
                    in_states[succ] = merged
                    worklist.append(succ)
        return entry if exit_state is None else exit_state
