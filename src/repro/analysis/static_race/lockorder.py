"""Lock-order graph and static deadlock-cycle detection.

Classic acquires-while-holding analysis: using the **may**-mode lockset
results (over-approximating held locks only adds edges, never hides
one), every ``LOCK m`` instruction reached while ``h`` may be held
contributes an edge ``h -> m`` witnessed by its source position.  A
cycle in that graph is a potential ABBA deadlock: two threads can each
hold one lock of the cycle while requesting the next.

Self-edges (re-acquiring a lock already held) are reported too —
MiniLang mutexes are not reentrant, so ``lock(m); lock(m)`` is a
guaranteed self-deadlock, the strongest diagnostic this pass emits.
"""

from dataclasses import dataclass

from repro.minilang import bytecode as bc
from repro.analysis.static_race.locksets import MAY, compute_locksets


@dataclass(frozen=True)
class LockEdge:
    """``held`` is (may be) held while ``acquired`` is being acquired."""

    held: str
    acquired: str
    func: str
    line: int


@dataclass
class LockOrderReport:
    edges: list  # all LockEdge, stable order
    cycles: list  # each: list of mutex names [m0, m1, ..] with m_i -> m_{i+1} -> .. -> m0
    self_deadlocks: list  # LockEdge with held == acquired

    def witness_edges(self, cycle):
        """One witnessing LockEdge per arc of ``cycle`` (first occurrence)."""
        arcs = list(zip(cycle, cycle[1:] + cycle[:1]))
        witnesses = []
        for held, acquired in arcs:
            for edge in self.edges:
                if edge.held == held and edge.acquired == acquired:
                    witnesses.append(edge)
                    break
        return witnesses


def analyze_lock_order(program, locksets=None):
    """Build the lock-order graph and find its elementary cycles."""
    if locksets is None or locksets.mode != MAY:
        locksets = compute_locksets(program, mode=MAY)
    edges = []
    seen = set()
    for name in sorted(program.functions):
        func = program.functions[name]
        for block in func.blocks:
            for idx, instr in enumerate(block.instrs):
                if instr.op != bc.LOCK:
                    continue
                held_set = locksets.held_before((name, block.id, idx))
                for held in sorted(held_set):
                    key = (held, instr.arg, name, instr.line)
                    if key in seen:
                        continue
                    seen.add(key)
                    edges.append(
                        LockEdge(
                            held=held, acquired=instr.arg, func=name, line=instr.line
                        )
                    )
    graph = {}
    for edge in edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)
    cycles = _simple_cycles(graph)
    return LockOrderReport(
        edges=edges,
        cycles=cycles,
        self_deadlocks=[e for e in edges if e.held == e.acquired],
    )


def _simple_cycles(graph):
    """Elementary cycles (length >= 2), each rotated to start at its
    smallest node and reported once.  Graphs here have a handful of
    mutexes, so a DFS enumeration is plenty."""
    cycles = set()
    nodes = sorted(set(graph) | {m for succ in graph.values() for m in succ})

    def dfs(start, node, path, on_path):
        for nxt in sorted(graph.get(node, ())):
            if nxt == start and len(path) >= 2:
                lo = path.index(min(path))
                cycles.add(tuple(path[lo:] + path[:lo]))
            elif nxt not in on_path and nxt > start:
                # Only extend with nodes > start: every cycle is found
                # exactly once, from its smallest member.
                path.append(nxt)
                on_path.add(nxt)
                dfs(start, nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    for start in nodes:
        dfs(start, start, [start], {start})
    return [list(c) for c in sorted(cycles)]
