"""Access-site extraction from compiled MiniLang CFGs.

A *site* is one bytecode instruction that touches a global data variable
(read or write) — the static counterpart of a dynamic SAP.  Sites are
identified by their CFG position ``(func, block, index)`` and carry the
``(var, line, kind)`` key used to match recorded SAPs back to them
(``SymSAP.line`` comes from the same ``Instr.line``, so the mapping is
exact by construction).
"""

from dataclasses import dataclass

from repro.minilang import bytecode as bc
from repro.runtime import events as ev

_READ_OPS = bc.GLOBAL_READS
_WRITE_OPS = bc.GLOBAL_WRITES


@dataclass(frozen=True)
class AccessSite:
    """One static global-access site."""

    func: str
    block: int
    index: int  # instruction index within the block
    var: str
    kind: str  # events.READ or events.WRITE
    line: int
    is_array: bool = False

    @property
    def point(self):
        """The program point *before* this instruction executes."""
        return (self.func, self.block, self.index)

    @property
    def key(self):
        """The (var, line, kind) key shared with dynamic SAPs."""
        return (self.var, self.line, self.kind)

    @property
    def is_write(self):
        return self.kind == ev.WRITE

    def describe(self):
        return "%s of %r at %s:%d" % (self.kind, self.var, self.func, self.line)


def collect_access_sites(program):
    """All global data-access sites, in a stable (func, block, index) order.

    Sync globals (mutexes/condvars) are excluded: their ordering is the
    business of Fso, not of race detection.
    """
    sites = []
    symbols = program.symbols.globals
    for name in sorted(program.functions):
        func = program.functions[name]
        for block in func.blocks:
            for idx, instr in enumerate(block.instrs):
                if instr.op in _READ_OPS:
                    kind = ev.READ
                elif instr.op in _WRITE_OPS:
                    kind = ev.WRITE
                else:
                    continue
                info = symbols.get(instr.arg)
                if info is None or not info.is_data:
                    continue
                sites.append(
                    AccessSite(
                        func=name,
                        block=block.id,
                        index=idx,
                        var=instr.arg,
                        kind=kind,
                        line=instr.line,
                        is_array=instr.op in (bc.LOAD_ELEM, bc.STORE_ELEM),
                    )
                )
    return sites


def sites_by_var(sites):
    """Group sites by the accessed variable name."""
    grouped = {}
    for site in sites:
        grouped.setdefault(site.var, []).append(site)
    return grouped


def direct_callees(func):
    """Function names ``func`` calls directly (spawns are not calls)."""
    callees = set()
    for block in func.blocks:
        for instr in block.instrs:
            if instr.op == bc.CALL:
                callees.add(instr.arg)
    return callees


def call_closure(program, root):
    """All functions reachable from ``root`` through CALL edges (inclusive)."""
    seen = set()
    stack = [root]
    while stack:
        name = stack.pop()
        if name in seen or name not in program.functions:
            continue
        seen.add(name)
        stack.extend(direct_callees(program.functions[name]))
    return seen
