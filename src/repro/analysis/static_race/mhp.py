"""May-happen-in-parallel (MHP) analysis from spawn/join structure.

The escape pass already knows the *thread roots* (``main`` plus every
spawn target) and whether a root may run as multiple thread instances.
MHP refines that with a per-function *spawn liveness* dataflow: at each
program point of a spawning function, which spawn sites are possibly
started and not definitely joined.  That is what lets accesses in
``main`` before the first ``spawn`` (initialisation) and after the last
``join`` (result collection) be proven sequential — the classic fork/join
pattern every benchmark uses.

The dataflow is a small abstract interpretation of the operand stack:

* ``SPAWN`` pushes the singleton set {site} and marks the site may-started;
* ``STORE_LOCAL``/``LOAD_LOCAL`` move handle sets through locals;
* ``JOIN`` pops a handle set — if it is a singleton whose spawn site is
  not inside a CFG cycle, the site becomes definitely-joined (a looping
  spawn site may have live instances besides the joined one, so it never
  strong-updates);
* everything else pushes/pops unknown (empty-set) values.

At merge points may-started unions, definitely-joined intersects, and
handle sets union — each in the conservative direction, so liveness is
over-approximated and MHP answers "yes" whenever in doubt.

Calls propagate in both directions: a callee inherits the liveness at
its call sites (threads live across the call are live inside it), and a
callee's *escaping* spawns (started, never joined before returning)
flow back into the caller's live set.
"""

from dataclasses import dataclass

from repro.minilang import bytecode as bc
from repro.analysis.escape import _blocks_in_cycles, thread_roots
from repro.analysis.static_race.sites import call_closure

_EMPTY = frozenset()


@dataclass(frozen=True)
class SpawnSite:
    func: str
    block: int
    index: int
    target: str
    in_cycle: bool


class MHPInfo:
    """Answers ``may_happen_in_parallel(site_a, site_b)`` for access sites.

    ``roots``: {root function: multiplicity} from the escape pass.
    ``reach``: {root: set of functions reachable through calls}.
    ``live_at``: {(func, block, index): frozenset of live SpawnSites}.
    ``ctx_live``: {func: frozenset of SpawnSites live across some call
    chain reaching the function}.
    ``colive``: unordered root-name pairs observed simultaneously live.
    """

    def __init__(self, program):
        self.program = program
        self.roots = thread_roots(program)
        self.reach = {
            root: call_closure(program, root)
            for root in self.roots
            if root in program.functions
        }
        self._spawn_sites = _find_spawn_sites(program)
        self.live_at = {}
        self._escaped = {}  # func -> frozenset of SpawnSites escaping it
        self._solve_liveness()
        self.ctx_live = self._propagate_context()
        self.colive = self._collect_colive()
        self.startable = self._startable_closure()

    # -- queries ---------------------------------------------------------

    def roots_of(self, func):
        """Thread roots whose threads may execute ``func``."""
        return sorted(r for r, funcs in self.reach.items() if func in funcs)

    def live_targets(self, point, func):
        """Root names possibly running in parallel while ``func`` sits at
        ``point`` (spawned by this function or by a caller, not joined).

        The set is closed over transitive spawning: a live thread's own
        (possibly unjoined) spawns run within the same window, so a
        grandchild thread is parallel with this point too."""
        live = set(self.live_at.get(point, _EMPTY))
        live |= self.ctx_live.get(func, _EMPTY)
        targets = set()
        for site in live:
            targets |= self.startable.get(site.target, frozenset({site.target}))
        return targets

    def self_parallel(self, root):
        """Can two instances of ``root``'s thread run simultaneously?"""
        return self.roots.get(root, 0) >= 2 or (root, root) in self.colive

    def may_happen_in_parallel(self, site_a, site_b):
        """Conservative MHP over two access sites (or any objects with
        ``.func`` and ``.point``)."""
        roots_a = self.roots_of(site_a.func)
        roots_b = self.roots_of(site_b.func)
        if not roots_a or not roots_b:
            return False  # dead code cannot race
        for ra in roots_a:
            for rb in roots_b:
                if ra == rb:
                    if self.self_parallel(ra):
                        return True
                    continue  # one single thread: program-ordered
                # Colive pairs expand over transitive spawning too: if x
                # and y are simultaneously live and can start ra and rb,
                # the started threads may overlap as well (may-direction:
                # over-approximating is sound).
                ex_a = {
                    x
                    for x, started in self.startable.items()
                    if ra in started
                }
                ex_b = {
                    y
                    for y, started in self.startable.items()
                    if rb in started
                }
                if any(
                    ((x, y) if x < y else (y, x)) in self.colive
                    for x in ex_a
                    for y in ex_b
                ):
                    return True
                if rb in self.live_targets(site_a.point, site_a.func):
                    return True
                if ra in self.live_targets(site_b.point, site_b.func):
                    return True
        return False

    def _startable_closure(self):
        """{root: roots transitively startable from it, itself included}.

        A thread of root ``r`` may execute any function in ``reach[r]``;
        every spawn site in those functions can start another root, which
        can start more in turn.  Closing over this is what makes nested
        fork patterns (worker spawns sub-worker) sound."""
        direct = {}
        for root, funcs in self.reach.items():
            targets = set()
            for (func, _b, _i), site in self._spawn_sites.items():
                if func in funcs:
                    targets.add(site.target)
            direct[root] = targets
        closure = {r: set(t) for r, t in direct.items()}
        changed = True
        while changed:
            changed = False
            for r in closure:
                grown = set()
                for t in closure[r]:
                    grown |= closure.get(t, set())
                if not grown <= closure[r]:
                    closure[r] |= grown
                    changed = True
        return {r: frozenset(t | {r}) for r, t in closure.items()}

    # -- liveness dataflow ----------------------------------------------

    def _solve_liveness(self):
        # Escaping-spawn summaries feed call transfer, so iterate the
        # whole program until they stabilise (spawn-in-callee patterns).
        for _ in range(len(self.program.functions) + 4):
            changed = False
            for name in sorted(self.program.functions):
                escaped = _FunctionLiveness(self, name).run()
                if self._escaped.get(name) != escaped:
                    self._escaped[name] = escaped
                    changed = True
            if not changed:
                return

    def _propagate_context(self):
        """Liveness inherited from callers: threads live at a call site
        are live throughout the callee."""
        ctx = {name: set() for name in self.program.functions}
        for _ in range(len(self.program.functions) + 4):
            changed = False
            for name in sorted(self.program.functions):
                func = self.program.functions[name]
                for block in func.blocks:
                    for idx, instr in enumerate(block.instrs):
                        if instr.op != bc.CALL:
                            continue
                        callee = instr.arg
                        if callee not in ctx:
                            continue
                        incoming = set(
                            self.live_at.get((name, block.id, idx), _EMPTY)
                        )
                        incoming |= ctx[name]
                        if not incoming <= ctx[callee]:
                            ctx[callee] |= incoming
                            changed = True
            if not changed:
                break
        return {name: frozenset(live) for name, live in ctx.items()}

    def _collect_colive(self):
        """Unordered root pairs that are simultaneously live somewhere.

        Two *distinct* live spawn sites witness their targets running in
        parallel; one site with multiple instances witnesses its target
        parallel with itself (escape's multiplicity covers that too, via
        :meth:`self_parallel`).
        """
        pairs = set()
        for live in self.live_at.values():
            sites = sorted(live, key=lambda s: (s.func, s.block, s.index))
            for i, sa in enumerate(sites):
                if sa.in_cycle:
                    pairs.add((sa.target, sa.target))
                for sb in sites[i + 1 :]:
                    lo, hi = sorted((sa.target, sb.target))
                    pairs.add((lo, hi))
        return pairs


def _find_spawn_sites(program):
    sites = {}
    for name, func in program.functions.items():
        cycles = _blocks_in_cycles(func)
        for block in func.blocks:
            for idx, instr in enumerate(block.instrs):
                if instr.op == bc.SPAWN:
                    sites[(name, block.id, idx)] = SpawnSite(
                        func=name,
                        block=block.id,
                        index=idx,
                        target=instr.arg,
                        in_cycle=block.id in cycles,
                    )
    return sites


class _FunctionLiveness:
    """One function's spawn-liveness fixpoint.

    Publishes per-point live sets into ``info.live_at`` and returns the
    set of spawn sites escaping through any RET (started, not joined).
    """

    def __init__(self, info, name):
        self.info = info
        self.name = name
        self.func = info.program.functions[name]

    def run(self):
        entry = _State(may=_EMPTY, joined=_EMPTY, locals={}, stack=())
        in_states = {0: entry}
        worklist = [0]
        escaped = None
        while worklist:
            block_id = worklist.pop()
            block = self.func.blocks[block_id]
            state = in_states[block_id]
            for idx, instr in enumerate(block.instrs):
                point = (self.name, block_id, idx)
                self.info.live_at[point] = self._live(state)
                state = self._transfer(state, instr, point)
                if instr.op == bc.RET:
                    live = self._live(state)
                    escaped = live if escaped is None else (escaped | live)
            for succ in block.successors():
                prev = in_states.get(succ)
                merged = state if prev is None else prev.merge(state)
                if merged != prev:
                    in_states[succ] = merged
                    worklist.append(succ)
        return escaped if escaped is not None else _EMPTY

    def _live(self, state):
        return frozenset(
            self.info._spawn_sites[p]
            for p in state.may - state.joined
            if p in self.info._spawn_sites
        ) | frozenset(
            site for site in state.foreign if site is not None
        )

    def _transfer(self, state, instr, point):
        op = instr.op
        if op == bc.SPAWN:
            nargs = instr.arg2 or 0
            stack = state.stack[: len(state.stack) - nargs] if nargs else state.stack
            return state.replace(
                may=state.may | {point},
                joined=state.joined - {point},
                stack=stack + (frozenset({point}),),
            )
        if op == bc.JOIN:
            handles, stack = state.pop()
            joined = state.joined
            if len(handles) == 1:
                (site_point,) = handles
                site = self.info._spawn_sites.get(site_point)
                if site is not None and not site.in_cycle:
                    joined = joined | {site_point}
            return state.replace(joined=joined, stack=stack)
        if op == bc.STORE_LOCAL:
            handles, stack = state.pop()
            new_locals = dict(state.locals)
            if handles:
                new_locals[instr.arg] = handles
            else:
                new_locals.pop(instr.arg, None)
            return state.replace(locals=new_locals, stack=stack)
        if op == bc.LOAD_LOCAL:
            return state.replace(
                stack=state.stack + (state.locals.get(instr.arg, _EMPTY),)
            )
        if op == bc.CALL:
            nargs = instr.arg2 or 0
            stack = state.stack[: len(state.stack) - nargs] if nargs else state.stack
            foreign = state.foreign | self.info._escaped.get(instr.arg, _EMPTY)
            return state.replace(stack=stack + (_EMPTY,), foreign=foreign)
        # Generic stack effects; handle sets never survive arithmetic.
        pushes, pops = _stack_effect(instr)
        stack = state.stack
        if pops:
            stack = stack[: max(0, len(stack) - pops)]
        if pushes:
            stack = stack + (_EMPTY,) * pushes
        if stack is state.stack:
            return state
        return state.replace(stack=stack)


def _stack_effect(instr):
    """(pushes, pops) for ops without handle-relevant semantics."""
    op = instr.op
    if op in (bc.CONST, bc.LOAD_GLOBAL):
        return 1, 0
    if op == bc.LOAD_ELEM:
        return 1, 1
    if op in (bc.STORE_GLOBAL, bc.POP, bc.ASSERT, bc.ASSUME):
        return 0, 1
    if op == bc.STORE_ELEM:
        return 0, 2
    if op == bc.BINOP:
        return 1, 2
    if op == bc.UNOP:
        return 1, 1
    if op == bc.BRANCH:
        return 0, 1
    if op == bc.PRINT:
        return 0, instr.arg or 0
    return 0, 0


class _State:
    """Immutable-ish dataflow state for one program point."""

    __slots__ = ("may", "joined", "locals", "stack", "foreign")

    def __init__(self, may, joined, locals, stack, foreign=_EMPTY):
        self.may = may
        self.joined = joined
        self.locals = locals
        self.stack = stack
        self.foreign = foreign  # SpawnSites escaped from callees

    def replace(self, **kwargs):
        fields = {
            "may": self.may,
            "joined": self.joined,
            "locals": self.locals,
            "stack": self.stack,
            "foreign": self.foreign,
        }
        fields.update(kwargs)
        return _State(**fields)

    def pop(self):
        if not self.stack:
            return _EMPTY, self.stack
        return self.stack[-1], self.stack[:-1]

    def merge(self, other):
        locals_merged = {}
        for key in set(self.locals) | set(other.locals):
            merged = self.locals.get(key, _EMPTY) | other.locals.get(key, _EMPTY)
            if merged:
                locals_merged[key] = merged
        # Stacks should agree in depth at block boundaries; if they do not
        # (unusual codegen), align from the bottom and pad with unknowns.
        depth = max(len(self.stack), len(other.stack))
        stack = tuple(
            (self.stack[i] if i < len(self.stack) else _EMPTY)
            | (other.stack[i] if i < len(other.stack) else _EMPTY)
            for i in range(depth)
        )
        return _State(
            may=self.may | other.may,
            joined=self.joined & other.joined,
            locals=locals_merged,
            stack=stack,
            foreign=self.foreign | other.foreign,
        )

    def __eq__(self, other):
        if not isinstance(other, _State):
            return NotImplemented
        return (
            self.may == other.may
            and self.joined == other.joined
            and self.locals == other.locals
            and self.stack == other.stack
            and self.foreign == other.foreign
        )

    def __ne__(self, other):
        return not self == other


def compute_mhp(program):
    """Build the MHP oracle for one compiled program."""
    return MHPInfo(program)
