"""Static race-pair detection: MHP ∧ shared ∧ must-lockset-disjoint.

For every unordered pair of access sites on the same shared global the
detector assigns a verdict:

``'racy'``
    at least one write, the sites may run in parallel, and no common
    mutex is provably held at both — reported as a diagnostic;
``'common-lock'``
    a mutex is held (must-mode) at both sites;
``'nonmhp'``
    the sites cannot overlap (fork/join structure orders them, or both
    belong to the same single-instance thread);
``'local'``
    the variable is thread-local per the escape pass.

The *dual* of the report — every pair whose verdict is not ``'racy'`` —
is the proven-race-free set that the constraint pruner consumes.
Verdicts are also exposed keyed by ``(var, line, kind)`` so recorded
SAPs can look themselves up; when several sites collapse onto one key
(same source line compiled into multiple CFG positions) the worst
verdict wins, keeping the pruning side conservative.
"""

from dataclasses import dataclass, field

from repro.analysis.escape import classify_variables
from repro.analysis.static_race.locksets import MUST, compute_locksets
from repro.analysis.static_race.mhp import compute_mhp
from repro.analysis.static_race.sites import collect_access_sites, sites_by_var
from repro.runtime import events as ev

RACY = "racy"
COMMON_LOCK = "common-lock"
NON_MHP = "nonmhp"
LOCAL = "local"

# Verdict badness, worst first, for key-collision merging.
_SEVERITY = {RACY: 0, COMMON_LOCK: 1, NON_MHP: 2, LOCAL: 3}


@dataclass(frozen=True)
class RacePair:
    """One reported racy site pair (a.var == b.var, at least one write)."""

    a: object  # AccessSite
    b: object  # AccessSite

    @property
    def var(self):
        return self.a.var

    @property
    def is_write_write(self):
        return self.a.is_write and self.b.is_write


@dataclass
class RaceAnalysis:
    """Everything the reporter and the pruner need, computed in one shot."""

    program: object
    classification: dict  # var -> (shared?, reason)
    sites: list
    mhp: object
    locksets: object
    race_pairs: list = field(default_factory=list)
    racy_vars: set = field(default_factory=set)
    # (key_lo, key_hi) -> verdict, over ALL same-var site pairs (both
    # orders of the two (var, line, kind) keys normalised by sorting).
    pair_verdicts: dict = field(default_factory=dict)
    # var -> frozenset of mutexes held at EVERY access site of the var
    # (empty when any site runs lock-free).
    consistent_locks: dict = field(default_factory=dict)

    def shared_vars(self):
        return {v for v, (is_shared, _) in self.classification.items() if is_shared}

    def verdict_for(self, key_a, key_b):
        """Verdict for a pair of (var, line, kind) keys; None if unknown."""
        pair = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
        return self.pair_verdicts.get(pair)


def analyze_races(program):
    """Run sites + MHP + must-locksets and classify every same-var pair."""
    analysis = RaceAnalysis(
        program=program,
        classification=classify_variables(program),
        sites=collect_access_sites(program),
        mhp=compute_mhp(program),
        locksets=compute_locksets(program, mode=MUST),
    )
    shared = analysis.shared_vars()
    grouped = sites_by_var(analysis.sites)
    held = {
        site.point: analysis.locksets.held_before(site.point)
        for site in analysis.sites
    }

    for var, var_sites in sorted(grouped.items()):
        locks = None
        for site in var_sites:
            locks = held[site.point] if locks is None else (locks & held[site.point])
        analysis.consistent_locks[var] = locks if locks else frozenset()

        var_is_shared = var in shared
        for i, sa in enumerate(var_sites):
            for sb in var_sites[i + 1 :]:
                verdict = _classify_pair(analysis, held, var_is_shared, sa, sb)
                _record(analysis, sa, sb, verdict)
            # A site also pairs with *itself* when its thread can run in
            # multiple instances (two threads executing the same line).
            verdict = _classify_pair(analysis, held, var_is_shared, sa, sa)
            _record(analysis, sa, sa, verdict)
    analysis.racy_vars = {pair.var for pair in analysis.race_pairs}
    return analysis


def _classify_pair(analysis, held, var_is_shared, sa, sb):
    if not var_is_shared:
        return LOCAL
    # Self-pairs (sa is sb) go through the same oracle: a site overlaps
    # itself when one of its roots self-overlaps OR two distinct roots
    # both reaching it are simultaneously live (e.g. a helper called by
    # main while a spawned worker also calls it).
    if not analysis.mhp.may_happen_in_parallel(sa, sb):
        return NON_MHP
    if held[sa.point] & held[sb.point]:
        return COMMON_LOCK
    return RACY


def _record(analysis, sa, sb, verdict):
    ka, kb = sa.key, sb.key
    pair = (ka, kb) if ka <= kb else (kb, ka)
    prev = analysis.pair_verdicts.get(pair)
    if prev is None or _SEVERITY[verdict] < _SEVERITY[prev]:
        analysis.pair_verdicts[pair] = verdict
    if verdict == RACY and (sa.is_write or sb.is_write) and not (
        sa is sb and sa.kind == ev.READ
    ):
        if sa is not sb or sa.is_write:
            analysis.race_pairs.append(RacePair(a=sa, b=sb))
