"""Static results packaged for the constraint encoder.

The encoder never sees CFGs — it sees recorded SAPs.  The bridge is the
``(var, line, kind)`` key: ``SymSAP.line`` and ``AccessSite.line`` both
come from the originating ``Instr.line``, so a dynamic SAP maps back to
the static site(s) it executed.  :class:`StaticPruneInfo` carries the
proven-race-free pair verdicts under that key, plus the per-variable
consistent-lock sets used by the critical-section pruning rules.

Conservatism: a SAP whose key is missing from ``known_keys`` (e.g. a
runtime-synthesised access) matches nothing and is never pruned.
"""

from dataclasses import dataclass, field

from repro.analysis.static_race.races import RACY, analyze_races


@dataclass
class StaticPruneInfo:
    """What ``constraints.prune.RWPruner`` needs from the static passes."""

    # (key_lo, key_hi) -> verdict string, keys are (var, line, kind),
    # only for pairs proven race-free (verdict != 'racy').
    race_free_pairs: dict = field(default_factory=dict)
    # var -> frozenset of mutexes held at every static access of var
    # (non-empty => the variable is consistently protected).
    consistent_locks: dict = field(default_factory=dict)
    # every (var, line, kind) key that static analysis knows about.
    known_keys: set = field(default_factory=set)

    def race_free(self, key_a, key_b):
        """Is the site pair proven race-free?  Unknown keys => False."""
        if key_a not in self.known_keys or key_b not in self.known_keys:
            return False
        pair = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
        return pair in self.race_free_pairs

    def protecting_locks(self, var):
        return self.consistent_locks.get(var, frozenset())


def compute_prune_info(program, races=None):
    """Distil :func:`analyze_races` output into a :class:`StaticPruneInfo`."""
    if races is None:
        races = analyze_races(program)
    info = StaticPruneInfo()
    info.known_keys = {site.key for site in races.sites}
    info.consistent_locks = dict(races.consistent_locks)
    for pair, verdict in races.pair_verdicts.items():
        if verdict != RACY:
            info.race_free_pairs[pair] = verdict
    return info
