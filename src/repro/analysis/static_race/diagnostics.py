"""Diagnostics: stable codes, severities, text and JSON rendering.

Codes
-----
``SR001``  write-write data race (error)
``SR002``  read-write data race (error)
``SR101``  lock-order cycle / potential deadlock (warning)
``SR102``  self-deadlock: re-acquiring a held non-reentrant mutex (error)
``SR201``  shared variable (info)
``SR202``  thread-local variable (info)
``SR301``  atomicity violation: unprotected RMW/check-then-act span (warning)
``SR302``  order violation: cross-thread use-before-init (warning)
``SR303``  lost notify: condvar signal not under the wait's mutex (warning)
``SR401``  robustness: store->load reordering cycle under TSO/PSO (warning)
``SR402``  robustness: store->store reordering cycle under PSO (warning)
``SR403``  fence inference: placement cutting every critical cycle (info)

The JSON shape is stable and versioned: ``{"schema_version", "program",
"memory_model", "diagnostics": [{"code", "severity", "message", "var",
"locations": [{"func", "line"}]}], "summary": {...}}`` — consumers (CI
lint gates, editors) key off ``code`` and ``severity``, never off message
text.  Diagnostics are sorted by (code, function, site) so the output is
byte-for-byte deterministic; ``schema_version`` bumps whenever a key is
added, removed, or the sort order changes.
"""

import json
from dataclasses import dataclass, field

# Version of the `repro analyze --json` payload (golden-file tested).
# v3: added the top-level "memory_model" key (SR4xx robustness pass).
SCHEMA_VERSION = 3

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Location:
    func: str
    line: int

    def __str__(self):
        return "%s:%d" % (self.func, self.line)


@dataclass
class Diagnostic:
    code: str
    severity: str
    message: str
    var: str = None  # variable or mutex the diagnostic is about, if any
    locations: tuple = ()

    def render(self):
        where = ", ".join(str(loc) for loc in self.locations)
        head = "%s %s: %s" % (self.severity, self.code, self.message)
        return "%s [%s]" % (head, where) if where else head

    def to_dict(self):
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "var": self.var,
            "locations": [
                {"func": loc.func, "line": loc.line} for loc in self.locations
            ],
        }


@dataclass
class StaticReport:
    """The full output of ``repro analyze`` for one program."""

    program_name: str
    memory_model: str = "sc"  # model the SR4xx robustness pass ran under
    diagnostics: list = field(default_factory=list)
    # var -> (shared?, reason) — the escape-pass classification table.
    variables: dict = field(default_factory=dict)
    # var -> frozenset of mutexes consistently held at every access.
    consistent_locks: dict = field(default_factory=dict)
    racy_vars: set = field(default_factory=set)
    lock_cycles: list = field(default_factory=list)

    def add(self, diag):
        self.diagnostics.append(diag)

    def sorted_diagnostics(self):
        # Order pinned by the JSON schema: (code, function, site), so the
        # rendered output is deterministic across runs and dict orders.
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.code,
                [(loc.func, loc.line) for loc in d.locations],
                d.var or "",
            ),
        )

    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    # -- rendering -------------------------------------------------------

    def to_text(self):
        lines = [
            "static analysis: %s [memory model: %s]"
            % (self.program_name, self.memory_model),
            "",
        ]
        lines.append("shared variables:")
        if self.variables:
            width = max(len(v) for v in self.variables)
            for var in sorted(self.variables):
                is_shared, reason = self.variables[var]
                tag = "shared      " if is_shared else "thread-local"
                locks = self.consistent_locks.get(var) or ()
                lock_note = (
                    "  (always under %s)" % ", ".join(sorted(locks)) if locks else ""
                )
                lines.append(
                    "  %-*s  %s  %s%s" % (width, var, tag, reason, lock_note)
                )
        else:
            lines.append("  (no data globals)")
        lines.append("")
        problems = [d for d in self.sorted_diagnostics() if d.severity != INFO]
        lines.append("diagnostics:")
        if problems:
            for diag in problems:
                lines.append("  " + diag.render())
        else:
            lines.append("  no races or lock-order cycles found")
        suggestions = [
            d for d in self.sorted_diagnostics() if d.code == "SR403"
        ]
        if suggestions:
            lines.append("")
            lines.append("fence suggestions:")
            for diag in suggestions:
                lines.append("  " + diag.render())
        lines.append("")
        lines.append(
            "summary: %d error(s), %d warning(s); %d racy variable(s), "
            "%d lock-order cycle(s)"
            % (
                len(self.errors()),
                len(self.warnings()),
                len(self.racy_vars),
                len(self.lock_cycles),
            )
        )
        return "\n".join(lines)

    def to_json(self):
        payload = {
            "schema_version": SCHEMA_VERSION,
            "program": self.program_name,
            "memory_model": self.memory_model,
            "variables": {
                var: {
                    "shared": is_shared,
                    "reason": reason,
                    "consistent_locks": sorted(self.consistent_locks.get(var) or ()),
                }
                for var, (is_shared, reason) in sorted(self.variables.items())
            },
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "racy_variables": sorted(self.racy_vars),
                "lock_cycles": [list(c) for c in self.lock_cycles],
            },
        }
        return json.dumps(payload, indent=2, sort_keys=False)
