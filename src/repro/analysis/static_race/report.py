"""Assemble the user-facing :class:`StaticReport` for one program."""

from repro.runtime import events as ev
from repro.analysis.static_race.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    Location,
    StaticReport,
)
from repro.analysis.static_race.lockorder import analyze_lock_order
from repro.analysis.static_race.patterns import find_bug_patterns
from repro.analysis.static_race.races import analyze_races
from repro.analysis.static_race.robustness import analyze_robustness


def analyze_program(program, name="<program>", memory_model="sc"):
    """Run every static pass and fold the results into one report.

    ``memory_model`` selects the robustness pass' target: under ``sc``
    no SR4xx diagnostics are emitted (sequential consistency has
    nothing to delay); ``tso`` reports store->load cycles (SR401);
    ``pso`` adds store->store cycles (SR402).  Fence suggestions
    (SR403) cover every cycle found for the selected model.
    """
    races = analyze_races(program)
    lock_order = analyze_lock_order(program)
    patterns = find_bug_patterns(program, races=races)
    robustness = analyze_robustness(program, memory_model, races=races)

    report = StaticReport(
        program_name=name,
        memory_model=memory_model,
        variables=races.classification,
        consistent_locks=races.consistent_locks,
        racy_vars=set(races.racy_vars),
        lock_cycles=[list(c) for c in lock_order.cycles],
    )

    for var, (is_shared, reason) in sorted(races.classification.items()):
        report.add(
            Diagnostic(
                code="SR201" if is_shared else "SR202",
                severity=INFO,
                message="%r is %s: %s"
                % (var, "shared" if is_shared else "thread-local", reason),
                var=var,
            )
        )

    seen_pairs = set()
    for pair in races.race_pairs:
        locs = tuple(
            sorted(
                {
                    Location(pair.a.func, pair.a.line),
                    Location(pair.b.func, pair.b.line),
                },
                key=lambda loc: (loc.func, loc.line),
            )
        )
        ww = pair.is_write_write
        dedup = (pair.var, ww, locs)
        if dedup in seen_pairs:
            continue
        seen_pairs.add(dedup)
        kinds = "%s/%s" % tuple(sorted((pair.a.kind, pair.b.kind), reverse=True))
        report.add(
            Diagnostic(
                code="SR001" if ww else "SR002",
                severity=ERROR,
                message="data race on %r (%s): concurrent accesses with no "
                "common lock" % (pair.var, kinds),
                var=pair.var,
                locations=locs,
            )
        )

    for edge in lock_order.self_deadlocks:
        report.add(
            Diagnostic(
                code="SR102",
                severity=ERROR,
                message="self-deadlock: %r acquired while already held"
                % edge.acquired,
                var=edge.acquired,
                locations=(Location(edge.func, edge.line),),
            )
        )

    for diag in patterns.diagnostics:
        report.add(diag)

    for diag in robustness.diagnostics:
        report.add(diag)

    for cycle in lock_order.cycles:
        witnesses = lock_order.witness_edges(cycle)
        locs = tuple(Location(e.func, e.line) for e in witnesses)
        report.add(
            Diagnostic(
                code="SR101",
                severity=WARNING,
                message="lock-order cycle %s: opposite acquisition orders can "
                "deadlock" % " -> ".join(cycle + [cycle[0]]),
                var=cycle[0],
                locations=locs,
            )
        )

    return report
