"""Static concurrency analysis (Locksmith-style, the paper's citation [30]).

CLAP uses static analysis twice: once to decide *which* accesses are
shared (``repro.analysis.escape``), and once to decide which shared
accesses can actually *race* — the paper offloads that to Locksmith and
only encodes order constraints for the remainder.  This package is our
version of the second half, operating on MiniLang bytecode CFGs:

``sites``
    Extraction of global-access and synchronization sites from the CFGs.
``locksets``
    Interprocedural must-/may-hold lockset dataflow (which mutexes are
    provably held at each site).
``mhp``
    May-happen-in-parallel: spawn/join liveness inside each spawner plus
    thread-root reachability (reusing ``escape.thread_roots``).
``races``
    Race-pair detection: MHP ∧ shared ∧ lockset-disjoint, and the dual
    proven-race-free pair set used for constraint pruning.
``lockorder``
    Lock-order graph (acquires-while-holding) and deadlock cycles.
``valueflow``
    Operand-stack def-use provenance and must-init dataflow.
``patterns``
    SR3xx bug-pattern passes (atomicity, order, lost-notify) whose
    findings double as violation predicates for ``repro explore``.
``robustness``
    Shasha-Snir weak-memory robustness: conflict graph, critical
    cycles classified per model (SR401 store->load under TSO/PSO,
    SR402 store->store under PSO), and SR403 minimal fence inference;
    SR401/SR402 findings double as explore predicates too.
``diagnostics``
    Stable diagnostic codes, severities, text and JSON rendering.
``prune``
    The export consumed by ``repro.constraints``: statically proven
    race-free site pairs keyed so recorded SAPs can be matched back.

Everything here over-approximates parallelism and under-approximates
held locks, so "racy" is conservative (superset of any dynamic
detector's findings) and "race-free" is a proof — the only direction
that matters when the result gates constraint pruning.
"""

from repro.analysis.static_race.diagnostics import Diagnostic, StaticReport
from repro.analysis.static_race.lockorder import analyze_lock_order
from repro.analysis.static_race.locksets import compute_locksets
from repro.analysis.static_race.mhp import MHPInfo, compute_mhp
from repro.analysis.static_race.patterns import (
    PatternReport,
    ViolationPredicate,
    find_bug_patterns,
)
from repro.analysis.static_race.prune import StaticPruneInfo, compute_prune_info
from repro.analysis.static_race.races import RaceAnalysis, analyze_races
from repro.analysis.static_race.report import analyze_program
from repro.analysis.static_race.robustness import (
    RobustnessReport,
    analyze_robustness,
    robustness_patterns,
)
from repro.analysis.static_race.sites import AccessSite, collect_access_sites

__all__ = [
    "AccessSite",
    "Diagnostic",
    "MHPInfo",
    "PatternReport",
    "RaceAnalysis",
    "RobustnessReport",
    "StaticPruneInfo",
    "StaticReport",
    "ViolationPredicate",
    "analyze_lock_order",
    "analyze_program",
    "analyze_races",
    "analyze_robustness",
    "collect_access_sites",
    "compute_locksets",
    "compute_mhp",
    "compute_prune_info",
    "find_bug_patterns",
    "robustness_patterns",
]
