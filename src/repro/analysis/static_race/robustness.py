"""Shasha-Snir weak-memory robustness analysis (SR401/SR402/SR403).

A program is *robust* against a weak memory model when every execution
under that model is equivalent to some sequentially consistent one.
Shasha and Snir characterise non-robustness with the *conflict graph*:
nodes are shared-access sites, edges are program order (po) and
cross-thread conflicts (same variable, at least one write, may happen
in parallel).  An execution exhibits weak-only behaviour exactly when
its happens-before relation contains a cycle through a *delayed* edge —
a po edge the model's store buffers can reorder:

* **store -> load** to a different address: the store sits in the FIFO
  buffer while the load reads global memory early.  Breaks under both
  TSO and PSO (``SR401``).
* **store -> store** to a different address: only PSO's per-address
  buffers can commit them out of order (``SR402``).

This pass lifts the characterisation to static sites (reusing the
race analysis' site extraction and MHP oracle): a po edge ``a -> b``
is *delayable* when ``a`` is a shared store, ``b`` is forward reachable
from ``a`` along some intra-function path crossing **no fence** (every
sync operation drains the buffers — see ``fences()`` in
:mod:`repro.constraints.memory_order` — while ``yield`` does not), and
the two accesses may target different addresses (same-variable scalar
pairs are pinned by FIFO order and store-to-load forwarding; array
accesses may hit different elements, so they stay delayable).  A
delayable edge completes a *critical cycle* when the conflict graph
contains a path from ``b`` back to ``a``.

The pass over-approximates in the "may" direction — reported cycles
are candidates that ``repro explore`` validates dynamically by solving
for (and replaying) an actual weak-memory witness.  In the other
direction the detection is complete for the straight-line litmus shape
(no calls between the endpoints): if no critical cycle exists, every
TSO/PSO execution is SC-equivalent, which the brute-force property
test checks by exhaustive enumeration.

``SR403`` is the remediation: a greedy minimum hitting set of fence
placements (each "immediately after a delayed store") that cuts every
critical cycle, verified by re-running the fence-free reachability
with the candidate fence inserted.
"""

from dataclasses import dataclass, field

from repro.minilang import bytecode as bc
from repro.runtime.memory import MEMORY_MODELS, PSO, SC, TSO
from repro.analysis.static_race.diagnostics import (
    INFO,
    WARNING,
    Diagnostic,
    Location,
)
from repro.analysis.static_race.patterns import PatternReport, ViolationPredicate
from repro.analysis.static_race.races import analyze_races
from repro.analysis.static_race.sites import sites_by_var
from repro.analysis.static_race.valueflow import _back_edges, _forward_reach

# Opcodes whose runtime handlers drain the executing thread's store
# buffers (the interpreter calls ``_fence`` before every sync SAP, and
# the encoder's ``fences()`` orders all non-yield sync SAPs in Fmo).
# YIELD is deliberately absent: sched_yield has no barrier semantics.
_FENCE_OPS = frozenset(
    {bc.LOCK, bc.UNLOCK, bc.WAIT, bc.SIGNAL, bc.BROADCAST, bc.SPAWN, bc.JOIN, bc.FENCE}
)

# Models under which each reordering kind is observable.
_EDGE_MODELS = {"SR401": (TSO, PSO), "SR402": (PSO,)}


@dataclass(frozen=True)
class DelayedEdge:
    """A delayable po edge: ``src`` (the store) may commit after ``dst``."""

    code: str  # SR401 (store->load) | SR402 (store->store)
    src: object  # AccessSite of the delayed store
    dst: object  # AccessSite of the access that may fly past it

    @property
    def sort_key(self):
        return (self.code, self.src.point, self.dst.point)


@dataclass(frozen=True)
class CriticalCycle:
    """A delayed edge plus a conflict-graph path closing the cycle."""

    edge: DelayedEdge
    path: tuple  # AccessSites from edge.dst back to edge.src (inclusive)

    def vars(self):
        names = {self.edge.src.var, self.edge.dst.var}
        names.update(site.var for site in self.path)
        return names


@dataclass(frozen=True)
class FencePlacement:
    """One inferred fence: insert ``fence;`` right after the store."""

    func: str
    line: int  # source line of the store the fence follows
    var: str  # variable the preceding store writes
    cuts: int  # critical cycles this placement cuts


@dataclass
class RobustnessReport:
    """Output of :func:`analyze_robustness` for one (program, model)."""

    memory_model: str
    cycles: list = field(default_factory=list)  # CriticalCycle
    fence_plan: list = field(default_factory=list)  # FencePlacement
    diagnostics: list = field(default_factory=list)
    predicates: list = field(default_factory=list)  # None for SR403 rows

    @property
    def robust(self):
        return not self.cycles

    def pattern_report(self):
        """The explorable findings as a :class:`PatternReport`."""
        report = PatternReport()
        for diag, pred in zip(self.diagnostics, self.predicates):
            if pred is not None:
                report.add(diag, pred)
        return report


def analyze_robustness(program, memory_model, races=None):
    """Run the Shasha-Snir robustness pass for one memory model.

    Under ``sc`` the report is trivially robust (there is nothing to
    delay).  Under ``tso`` only store->load edges are delayable; under
    ``pso`` store->store edges join them.
    """
    if memory_model not in MEMORY_MODELS:
        raise ValueError(
            "unknown memory model %r (expected one of %s)"
            % (memory_model, MEMORY_MODELS)
        )
    report = RobustnessReport(memory_model=memory_model)
    if memory_model == SC:
        return report

    if races is None:
        races = analyze_races(program)
    shared = races.shared_vars()
    sites = [s for s in races.sites if s.var in shared]
    if not sites:
        return report

    graph = _ConflictGraph(program, sites, races.mhp)
    codes = ["SR401"] if memory_model == TSO else ["SR401", "SR402"]
    for edge in graph.delayed_edges(codes):
        path = graph.cycle_path(edge)
        if path is not None:
            report.cycles.append(CriticalCycle(edge=edge, path=path))

    report.fence_plan = _infer_fences(program, graph, report.cycles)
    _emit_diagnostics(report)
    return report


def robustness_patterns(program, memory_model, races=None):
    """Explorable SR401/SR402 findings only (for the explore driver)."""
    return analyze_robustness(
        program, memory_model, races=races
    ).pattern_report()


# -- conflict graph ---------------------------------------------------------


class _ConflictGraph:
    """Program-order and conflict edges over shared-access sites."""

    def __init__(self, program, sites, mhp):
        self.program = program
        self.sites = sorted(sites, key=lambda s: s.point)
        self.mhp = mhp
        self._by_func = {}
        for site in self.sites:
            self._by_func.setdefault(site.func, []).append(site)
        # Acyclic forward reachability per function, for po edges.
        self._reach = {}
        for name in self._by_func:
            func = program.functions[name]
            skip = _back_edges(func)
            self._reach[name] = {
                block.id: _forward_reach(func, block.id, skip)
                for block in func.blocks
            }
        self._conflicts = self._conflict_adjacency()

    # -- po ----------------------------------------------------------------

    def po(self, a, b):
        """Is ``b`` strictly program-order after ``a`` (same function,
        same-iteration paths only — back edges excluded)?"""
        if a.func != b.func:
            return False
        if a.block == b.block:
            return a.index < b.index or b.block in self._reach[a.func][a.block]
        return b.block in self._reach[a.func][a.block]

    def po_successors(self, a):
        return [b for b in self._by_func.get(a.func, ()) if self.po(a, b)]

    # -- conflicts -----------------------------------------------------------

    def _conflict_adjacency(self):
        adj = {site: [] for site in self.sites}
        by_var = sites_by_var(self.sites)
        for var in sorted(by_var):
            group = by_var[var]
            for i, a in enumerate(group):
                for b in group[i:]:
                    if not (a.is_write or b.is_write):
                        continue
                    if a is b and not any(
                        self.mhp.self_parallel(r) for r in self.mhp.roots_of(a.func)
                    ):
                        continue
                    if not self.mhp.may_happen_in_parallel(a, b):
                        continue
                    adj[a].append(b)
                    if b is not a:
                        adj[b].append(a)
        return adj

    # -- delayable edges -----------------------------------------------------

    def delayed_edges(self, codes):
        """All delayable po edges of the requested kinds, in site order."""
        edges = []
        for name in sorted(self._by_func):
            func = self.program.functions[name]
            for a in self._by_func[name]:
                if not a.is_write:
                    continue
                for b in self.po_successors(a):
                    code = "SR401" if b.kind != a.kind else "SR402"
                    if code not in codes:
                        continue
                    # Same scalar address: FIFO order and store-to-load
                    # forwarding pin the pair; array accesses may hit
                    # different elements, so they stay delayable.
                    if a.var == b.var and not (a.is_array or b.is_array):
                        continue
                    if not self._fence_free(func, a, b):
                        continue
                    edges.append(DelayedEdge(code=code, src=a, dst=b))
        edges.sort(key=lambda e: e.sort_key)
        return edges

    def _fence_free(self, func, a, b, extra=frozenset()):
        """Does some intra-function path from just after ``a`` reach ``b``
        without crossing a fence (or a hypothetical fence in ``extra``)?
        Back edges count: a loop-around fence-free path is a real path."""
        target = (b.block, b.index)
        stack = [(a.block, a.index + 1)]
        seen = set()
        while stack:
            pos = stack.pop()
            if pos in seen:
                continue
            seen.add(pos)
            block_id, idx = pos
            if pos in extra:
                continue  # hypothetical fence *before* this instruction
            if pos == target:
                return True
            block = func.blocks[block_id]
            if idx >= len(block.instrs):
                stack.extend((succ, 0) for succ in block.successors())
                continue
            if block.instrs[idx].op in _FENCE_OPS:
                continue  # buffers drained: nothing delays past here
            stack.append((block_id, idx + 1))
        return False

    # -- critical cycles ------------------------------------------------------

    def cycle_path(self, edge):
        """A conflict-graph path from ``edge.dst`` back to ``edge.src``,
        or None when the delayed edge closes no cycle.  BFS over
        conflict and po edges, so the witness path is shortest."""
        start, goal = edge.dst, edge.src
        parents = {start: None}
        frontier = [start]
        while frontier:
            nxt = []
            for node in frontier:
                for succ in self._neighbors(node):
                    if succ in parents:
                        continue
                    parents[succ] = node
                    if succ is goal:
                        path = [succ]
                        while path[-1] is not None:
                            path.append(parents[path[-1]])
                        path.pop()
                        path.reverse()
                        return tuple(path)
                    nxt.append(succ)
            frontier = nxt
        return None

    def _neighbors(self, node):
        return self._conflicts.get(node, []) + self.po_successors(node)


# -- fence inference (SR403) -------------------------------------------------


def _infer_fences(program, graph, cycles):
    """Greedy minimum hitting set: pick fence placements (each just
    after a delayed store) until every critical cycle is cut.  A
    placement cuts a cycle when, with the fence inserted, no fence-free
    path connects the cycle's delayed edge anymore."""
    if not cycles:
        return []
    candidates = sorted(
        {cycle.edge.src for cycle in cycles}, key=lambda s: s.point
    )

    def cuts(candidate, cycle):
        edge = cycle.edge
        if edge.src.func != candidate.func:
            return False
        func = program.functions[edge.src.func]
        extra = frozenset({(candidate.block, candidate.index + 1)})
        return not graph._fence_free(func, edge.src, edge.dst, extra=extra)

    plan = []
    uncut = list(cycles)
    while uncut:
        best, best_cut = None, []
        for candidate in candidates:
            cut = [c for c in uncut if cuts(candidate, c)]
            if len(cut) > len(best_cut):
                best, best_cut = candidate, cut
        if best is None:
            break  # remaining cycles have no candidate placement
        plan.append(
            FencePlacement(
                func=best.func, line=best.line, var=best.var, cuts=len(best_cut)
            )
        )
        candidates = [c for c in candidates if c is not best]
        uncut = [c for c in uncut if c not in best_cut]
    return plan


# -- diagnostics --------------------------------------------------------------


_KIND_LABEL = {"SR401": "store->load", "SR402": "store->store"}


def _emit_diagnostics(report):
    """Group cycles per (code, delayed store) into SR401/SR402 warnings
    with explorable predicates, then append the SR403 fence plan."""
    grouped = {}
    for cycle in report.cycles:
        key = (cycle.edge.code, cycle.edge.src.point)
        grouped.setdefault(key, []).append(cycle)

    for key in sorted(grouped):
        cycles = grouped[key]
        code = cycles[0].edge.code
        src = cycles[0].edge.src
        dsts = sorted(
            {c.edge.dst for c in cycles}, key=lambda s: (s.point, s.kind)
        )
        focus = set()
        for c in cycles:
            focus |= c.vars()
        models = "/".join(_EDGE_MODELS[code])
        dst_lines = sorted({d.line for d in dsts})
        locs = tuple(
            sorted(
                {Location(src.func, src.line)}
                | {Location(d.func, d.line) for d in dsts},
                key=lambda loc: (loc.func, loc.line),
            )
        )
        report.diagnostics.append(
            Diagnostic(
                code=code,
                severity=WARNING,
                message="robustness violation on %r: the store at %s:%d may "
                "be delayed past the %s at line(s) %s (%s reordering under "
                "%s), completing a critical cycle"
                % (
                    src.var,
                    src.func,
                    src.line,
                    "load(s)" if code == "SR401" else "store(s)",
                    ", ".join(str(line) for line in dst_lines),
                    _KIND_LABEL[code],
                    models,
                ),
                var=src.var,
                locations=locs,
            )
        )
        pred = ViolationPredicate(
            code=code,
            var=src.var,
            func=src.func,
            description="%s reordering of %r" % (_KIND_LABEL[code], src.var),
            focus_vars=tuple(sorted(focus)),
            write_line=src.line,
            reorder_read_lines=tuple(dst_lines) if code == "SR401" else (),
            reorder_write_lines=tuple(dst_lines) if code == "SR402" else (),
        )
        report.predicates.append(pred)

    for placement in report.fence_plan:
        report.diagnostics.append(
            Diagnostic(
                code="SR403",
                severity=INFO,
                message="fence inference: insert 'fence;' after the store "
                "to %r at %s:%d — cuts %d critical cycle(s) under %s"
                % (
                    placement.var,
                    placement.func,
                    placement.line,
                    placement.cuts,
                    report.memory_model,
                ),
                var=placement.var,
                locations=(Location(placement.func, placement.line),),
            )
        )
        report.predicates.append(None)
