"""SR3xx bug-pattern passes: atomicity, order, and lost-notify.

Three interprocedural pattern detectors layered on the existing oracles
(MHP from :mod:`mhp`, must-locksets from :mod:`locksets`, value flow and
must-init from :mod:`valueflow`):

``SR301`` **atomicity violation** — a read-modify-write *span* on a
    shared variable (a global write whose value depends on an earlier
    global read of the same variable in the same thread, or a
    check-then-act: a branch on a read followed by a reachable write)
    where no single mutex is held across the whole span, while a
    concurrent write to the variable can interleave.  Catches the
    per-access-locked increment the pairwise race detector calls
    "common-lock": each access is protected, the *span* is not.

``SR302`` **order violation** — a cross-thread use-before-init: a read
    of a shared variable not definitely initialized by its own thread
    (must-init), performed by a pure consumer (its thread never writes
    the variable), while the initializing write in another thread may
    happen in parallel with it and no common lock even serializes the
    two.  Locks alone would not *order* init before use, but
    consistently locked producer/consumer protocols are excluded to keep
    the pattern quiet on disciplined code.

``SR303`` **lost notify** — a ``signal``/``broadcast`` on a condvar that
    may run in parallel with a ``wait`` on the same condvar while NOT
    holding the wait's mutex: the signal can fire before the wait
    registers (lost wakeup) or wake the waiter before its predicate is
    published (premature wake).

Each finding doubles as a :class:`ViolationPredicate` — the line-level
site description ``repro explore`` compiles into solver goal clauses
(see :mod:`repro.core.explore`).
"""

from dataclasses import dataclass, field

from repro.minilang import bytecode as bc
from repro.analysis.static_race.diagnostics import (
    WARNING,
    Diagnostic,
    Location,
)
from repro.analysis.static_race.races import analyze_races
from repro.analysis.static_race.sites import sites_by_var
from repro.analysis.static_race.valueflow import (
    compute_must_writes,
    compute_value_flow,
    span_points,
)


@dataclass(frozen=True)
class SyncSite:
    """A wait/signal/broadcast instruction site (MHP-queryable)."""

    func: str
    block: int
    index: int
    kind: str  # 'wait' | 'signal' | 'broadcast'
    condvar: str
    mutex: str  # the wait's mutex; None for signal/broadcast
    line: int

    @property
    def point(self):
        return (self.func, self.block, self.index)


@dataclass(frozen=True)
class ViolationPredicate:
    """A line-level description of one finding, compilable into solver
    goal clauses by the explore driver.

    Only the fields of the matching ``code`` are populated:

    * SR301: ``read_line``/``write_line`` (the span, in ``func``) and
      ``remote_write_lines`` (interleaving writer candidates);
    * SR302: ``read_line`` (in ``func``) and ``init_write_lines``;
    * SR303: ``condvar``/``mutex``, ``wait_line`` (in ``func``) and
      ``signal_lines`` (the unprotected signals);
    * SR401/SR402 (robustness — see
      :mod:`repro.analysis.static_race.robustness`): ``write_line``
      (the delayed store, in ``func``) and ``reorder_read_lines`` /
      ``reorder_write_lines`` (po-later accesses that may fly past it).
    """

    code: str
    var: str
    func: str
    description: str
    focus_vars: tuple = ()
    read_line: int = 0
    write_line: int = 0
    remote_write_lines: tuple = ()
    init_write_lines: tuple = ()
    condvar: str = None
    mutex: str = None
    wait_line: int = 0
    signal_lines: tuple = ()
    reorder_read_lines: tuple = ()
    reorder_write_lines: tuple = ()


@dataclass
class PatternReport:
    """Output of :func:`find_bug_patterns`: parallel diagnostic and
    predicate lists (``predicates[i]`` backs ``diagnostics[i]``)."""

    diagnostics: list = field(default_factory=list)
    predicates: list = field(default_factory=list)

    def add(self, diag, pred):
        self.diagnostics.append(diag)
        self.predicates.append(pred)


def find_bug_patterns(program, races=None):
    """Run the three SR3xx passes; returns a :class:`PatternReport`."""
    if races is None:
        races = analyze_races(program)
    report = PatternReport()
    _find_atomicity(program, races, report)
    _find_order_violations(program, races, report)
    _find_lost_notify(program, races, report)
    return report


# -- SR301: atomicity violations ------------------------------------------


def _find_atomicity(program, races, report):
    shared = races.shared_vars()
    site_by_point = {s.point: s for s in races.sites}
    by_var = sites_by_var(races.sites)
    flows = compute_value_flow(program)
    must = races.locksets

    spans = []  # (read site, write site, idiom)
    seen = set()
    for name in sorted(flows):
        flow = flows[name]
        func = program.functions[name]
        # Direct RMW: a write whose value depends on a read of the same var.
        for wpoint in sorted(flow.write_deps):
            wsite = site_by_point.get(wpoint)
            if wsite is None or wsite.var not in shared:
                continue
            for rpoint in sorted(flow.write_deps[wpoint]):
                rsite = site_by_point.get(rpoint)
                if rsite is None or rsite.var != wsite.var:
                    continue
                key = (rsite.key, wsite.key)
                if key not in seen:
                    seen.add(key)
                    spans.append((rsite, wsite, "read-modify-write"))
        # Check-then-act: a branch tested a read of v, and a write of v is
        # forward reachable from the branch in the same function.
        for bpoint in sorted(flow.branch_deps):
            for rpoint in sorted(flow.branch_deps[bpoint]):
                rsite = site_by_point.get(rpoint)
                if rsite is None or rsite.var not in shared:
                    continue
                for wsite in by_var.get(rsite.var, ()):
                    if wsite.func != name or not wsite.is_write:
                        continue
                    if span_points(func, name, rsite.point, wsite.point) is None:
                        continue
                    key = (rsite.key, wsite.key)
                    if key not in seen:
                        seen.add(key)
                        spans.append((rsite, wsite, "check-then-act"))

    for rsite, wsite, idiom in spans:
        func = program.functions[rsite.func]
        points = span_points(func, rsite.func, rsite.point, wsite.point)
        if points is None:
            # Loop-carried pairing: cover with the endpoint locksets only.
            coverage = must.held_before(rsite.point) & must.held_before(
                wsite.point
            )
        else:
            coverage = None
            for point in points:
                held = must.held_before(point)
                coverage = held if coverage is None else (coverage & held)
            coverage = coverage or frozenset()
        remote = []
        for cand in by_var.get(rsite.var, ()):
            if not cand.is_write:
                continue
            if coverage & must.held_before(cand.point):
                continue  # the span lock also guards this writer
            if races.mhp.may_happen_in_parallel(
                rsite, cand
            ) or races.mhp.may_happen_in_parallel(wsite, cand):
                remote.append(cand)
        if not remote:
            continue
        locs = tuple(
            sorted(
                {Location(rsite.func, rsite.line), Location(wsite.func, wsite.line)}
                | {Location(c.func, c.line) for c in remote},
                key=lambda loc: (loc.func, loc.line),
            )
        )
        report.add(
            Diagnostic(
                code="SR301",
                severity=WARNING,
                message="atomicity violation on %r: %s span (read line %d -> "
                "write line %d) is not lock-covered and a concurrent write "
                "can interleave" % (rsite.var, idiom, rsite.line, wsite.line),
                var=rsite.var,
                locations=locs,
            ),
            ViolationPredicate(
                code="SR301",
                var=rsite.var,
                func=rsite.func,
                description="%s span on %r" % (idiom, rsite.var),
                focus_vars=(rsite.var,),
                read_line=rsite.line,
                write_line=wsite.line,
                remote_write_lines=tuple(sorted({c.line for c in remote})),
            ),
        )


# -- SR302: order violations ----------------------------------------------


def _find_order_violations(program, races, report):
    shared = races.shared_vars()
    by_var = sites_by_var(races.sites)
    must_init = compute_must_writes(program)
    must = races.locksets
    mhp = races.mhp

    reported = set()
    for site in races.sites:
        var = site.var
        if site.is_write or var not in shared:
            continue
        if var in must_init.written_before(site.point):
            continue  # this thread initialized it itself
        # Pure consumer only: a thread that also writes the variable is a
        # peer in a racy protocol (SR001/SR301 territory), not a
        # use-before-init reader.
        roots = mhp.roots_of(site.func)
        if any(
            w.is_write and w.func in mhp.reach.get(root, ())
            for root in roots
            for w in by_var.get(var, ())
        ):
            continue
        read_locks = must.held_before(site.point)
        writers = [
            w
            for w in by_var.get(var, ())
            if w.is_write
            and mhp.may_happen_in_parallel(site, w)
            and not (read_locks & must.held_before(w.point))
        ]
        if not writers:
            continue
        key = (var, site.func, site.line)
        if key in reported:
            continue
        reported.add(key)
        locs = tuple(
            sorted(
                {Location(site.func, site.line)}
                | {Location(w.func, w.line) for w in writers},
                key=lambda loc: (loc.func, loc.line),
            )
        )
        report.add(
            Diagnostic(
                code="SR302",
                severity=WARNING,
                message="order violation on %r: read at %s:%d may execute "
                "before the initializing write in another thread"
                % (var, site.func, site.line),
                var=var,
                locations=locs,
            ),
            ViolationPredicate(
                code="SR302",
                var=var,
                func=site.func,
                description="use-before-init of %r" % var,
                focus_vars=(var,),
                read_line=site.line,
                init_write_lines=tuple(sorted({w.line for w in writers})),
            ),
        )


# -- SR303: lost notify ---------------------------------------------------


def _find_lost_notify(program, races, report):
    waits, signals = _sync_sites(program)
    must = races.locksets
    mhp = races.mhp
    site_by_var = sites_by_var(races.sites)
    shared = races.shared_vars()

    for wait in waits:
        naked = []
        for sig in signals:
            if sig.condvar != wait.condvar:
                continue
            if wait.mutex in must.held_before(sig.point):
                continue  # published under the wait's mutex: well-formed
            if not mhp.may_happen_in_parallel(wait, sig):
                continue
            naked.append(sig)
        if not naked:
            continue
        # Focus variables: shared data this waiter's function reads — the
        # state a premature wake would observe half-published.
        focus = tuple(
            sorted(
                {
                    s.var
                    for var_sites in site_by_var.values()
                    for s in var_sites
                    if s.func == wait.func and not s.is_write and s.var in shared
                }
            )
        )
        locs = tuple(
            sorted(
                {Location(wait.func, wait.line)}
                | {Location(s.func, s.line) for s in naked},
                key=lambda loc: (loc.func, loc.line),
            )
        )
        report.add(
            Diagnostic(
                code="SR303",
                severity=WARNING,
                message="lost notify on %r: signal not holding %r may fire "
                "before the wait at %s:%d registers (lost or premature "
                "wakeup)" % (wait.condvar, wait.mutex, wait.func, wait.line),
                var=wait.condvar,
                locations=locs,
            ),
            ViolationPredicate(
                code="SR303",
                var=wait.condvar,
                func=wait.func,
                description="lost notify on %r" % wait.condvar,
                focus_vars=focus,
                condvar=wait.condvar,
                mutex=wait.mutex,
                wait_line=wait.line,
                signal_lines=tuple(sorted({s.line for s in naked})),
            ),
        )


def _sync_sites(program):
    waits, signals = [], []
    for name in sorted(program.functions):
        func = program.functions[name]
        for block in func.blocks:
            for idx, instr in enumerate(block.instrs):
                if instr.op == bc.WAIT:
                    waits.append(
                        SyncSite(
                            func=name,
                            block=block.id,
                            index=idx,
                            kind="wait",
                            condvar=instr.arg,
                            mutex=instr.arg2,
                            line=instr.line,
                        )
                    )
                elif instr.op in (bc.SIGNAL, bc.BROADCAST):
                    signals.append(
                        SyncSite(
                            func=name,
                            block=block.id,
                            index=idx,
                            kind="signal" if instr.op == bc.SIGNAL else "broadcast",
                            condvar=instr.arg,
                            mutex=None,
                            line=instr.line,
                        )
                    )
    return waits, signals
