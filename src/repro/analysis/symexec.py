"""Path-directed symbolic execution (the paper's modified KLEE).

Each thread's recorded path is re-executed symbolically and independently:

* the value returned by every shared read is a fresh :class:`Sym`;
* branch outcomes are dictated by the decoded path, and every branch whose
  condition is not concrete contributes a path condition (``Fpath``);
* all SAPs are collected with per-thread indices **identical** to the ones
  the runtime allocates (start/exit, wait desugaring, fork naming — see
  :mod:`repro.runtime.events`);
* the failing assertion contributes the bug predicate ``Fbug`` (the
  *negation* of its condition);
* thread-local state (locals and non-shared globals) is tracked exactly;
  thread-local arrays support symbolic indices by delayed resolution into
  ITE chains over the ordered write list (paper §5, "Symbolic Address
  Resolution").

Shared array accesses must have concrete indices (otherwise the per-address
grouping of the read-write constraints is impossible); this mirrors the
paper's reliance on concrete SAP addresses from the KLEE memory model.
"""

from dataclasses import dataclass, field

from repro.minilang import bytecode as bc
from repro.runtime import events as ev
from repro.analysis.symbolic import (
    Const,
    Sym,
    SymExpr,
    expr_size,
    free_syms,
    mk_binop,
    mk_ite,
    mk_not,
    mk_unop,
    sym_eval,
    wrap,
)


class SymExecError(Exception):
    """The recorded path cannot be re-executed symbolically.

    ``thread`` names the offending thread when known — the trace store's
    recovery validation uses it to prune threads whose logs the truncated
    tail can no longer account for.
    """

    def __init__(self, message, thread=None):
        super().__init__(message)
        self.thread = thread


@dataclass(frozen=True)
class ThreadHandle:
    """The (concrete) value returned by spawn during symbolic execution."""

    name: str


@dataclass
class SymSAP:
    """A SAP reconstructed offline, with symbolic value information."""

    thread: str
    index: int
    kind: str
    addr: object = None
    value: SymExpr | None = None  # write: stored expr; read: its Sym
    line: int = 0
    deps: frozenset = frozenset()  # read-Sym names this SAP depends on
    # Emitted while executing a synthesized prefix (flight-recorder logs):
    # the access happened before the eviction horizon, so the encoder
    # relaxes its constraints — a synth read's value stays unconstrained
    # when no writer is chosen for it ("unknown entry state").
    synth: bool = False

    @property
    def uid(self):
        return (self.thread, self.index)

    @property
    def is_read(self):
        return self.kind == ev.READ

    @property
    def is_write(self):
        return self.kind == ev.WRITE

    @property
    def is_data(self):
        return self.kind in (ev.READ, ev.WRITE)

    def __repr__(self):
        addr = "" if self.addr is None else " %r" % (self.addr,)
        return "SymSAP(%s#%d %s%s)" % (self.thread, self.index, self.kind, addr)


@dataclass
class PathCondition:
    """One branch condition the computed execution must satisfy (truthy)."""

    expr: SymExpr
    thread: str
    after_index: int  # index of the last SAP emitted before this condition
    line: int = 0
    # Condition from a synthesized prefix block: the branch direction was
    # reconstructed, not recorded, so the encoder must not require it.
    synth: bool = False

    def __repr__(self):
        return "PathCondition(%s after %s#%d: %r)" % (
            self.thread,
            self.thread,
            self.after_index,
            self.expr,
        )


@dataclass
class ThreadSummary:
    """Everything the constraint encoder needs about one thread."""

    thread: str
    saps: list = field(default_factory=list)
    conditions: list = field(default_factory=list)
    bug_expr: SymExpr | None = None
    bug_line: int = 0
    reads: dict = field(default_factory=dict)  # sym name -> SymSAP
    children: list = field(default_factory=list)  # forked thread names
    # Every assert on the path, in execution order: (condition expr, line,
    # index into `conditions` before the provisional passing-condition was
    # appended).  The explore driver retargets one of these as the bug.
    asserts: list = field(default_factory=list)

    def data_saps(self):
        return [s for s in self.saps if s.is_data]

    def constraint_size(self):
        total = sum(expr_size(c.expr) for c in self.conditions)
        if self.bug_expr is not None:
            total += expr_size(self.bug_expr)
        return total


class _Frame:
    def __init__(self, trace, func):
        self.trace = trace
        self.func = func
        self.block_pos = 0  # index into trace.blocks
        self.ip = 0
        self.locals = {}
        self.stack = []
        self.call_pos = 0  # next callee trace to consume
        # True when the whole activation is synthesized (or was entered
        # from inside a synthesized region of the caller).
        self.synth_all = trace.synthesized

    @property
    def block_id(self):
        return self.trace.blocks[self.block_pos]

    def instrs(self):
        return self.func.blocks[self.block_id].instrs


class SymbolicExecutor:
    """Re-executes one thread's decoded path, collecting SAPs + constraints.

    Parameters
    ----------
    program : CompiledProgram
    thread_name : str
    trace : DecodedThreadPath
    shared : set of shared global names
    bug : BugReport or None — the failure observed at runtime; when this
        thread and line match the last executed assert, that assert becomes
        the bug predicate instead of a path condition.
    locals_init : concrete arguments for the root function (spawn args must
        be concrete; the CLAP pipeline extracts them from the parent's
        symbolic state, see :func:`execute_recorded_paths`).
    """

    def __init__(
        self, program, thread_name, trace, shared, bug=None, args=(), resume=None
    ):
        self.program = program
        self.thread = thread_name
        self.trace = trace
        self.shared = shared
        self.bug = bug
        self.args = list(args)
        # Checkpoint resume: a ThreadSnapshot whose frames seed execution
        # (see repro.runtime.checkpoint); traces then start mid-path.
        self.resume = resume

        self.summary = ThreadSummary(thread=thread_name)
        self.sap_count = 0
        self.control_deps = set()  # Sym names from branch conditions so far
        self.child_count = 0
        # Thread-local globals view: addr -> expr; arrays may switch to an
        # ordered overlay of (index_expr, value_expr) writes.
        self.local_cells = {}
        self.array_overlays = {}  # array name -> list[(idx_expr, val_expr)]
        self._spawn_args = {}  # child name -> concrete args
        # True while the current position is inside a synthesized prefix
        # region; kept in sync with the top frame by _sync_synth.
        self._in_synth = False

        for info in program.symbols.globals.values():
            if not info.is_data or info.name in shared:
                continue
            if info.is_array:
                for i in range(info.size):
                    self.local_cells[(info.name, i)] = Const(0)
            else:
                self.local_cells[(info.name,)] = wrap(info.init)

    # ------------------------------------------------------------------ #

    def error(self, message, instr=None):
        where = " (line %d)" % instr.line if instr is not None else ""
        raise SymExecError(
            "thread %s%s: %s" % (self.thread, where, message), thread=self.thread
        )

    def emit(self, kind, addr=None, value=None, line=0, deps=frozenset()):
        sap = SymSAP(
            thread=self.thread,
            index=self.sap_count,
            kind=kind,
            addr=addr,
            value=value,
            line=line,
            deps=frozenset(deps) | frozenset(self.control_deps),
            synth=self._in_synth,
        )
        self.sap_count += 1
        self.summary.saps.append(sap)
        return sap

    def add_condition(self, expr, line=0):
        expr = wrap(expr)
        if isinstance(expr, Const):
            if not expr.value:
                if self._in_synth:
                    # A synthesized prefix is a candidate reconstruction,
                    # not a recorded fact; a concretely false branch there
                    # means the candidate is imperfect, which replay
                    # validation will judge — it is not log corruption.
                    return None
                self.error(
                    "recorded path is inconsistent: concrete condition is false"
                )
            return None
        cond = PathCondition(
            expr=expr,
            thread=self.thread,
            after_index=self.sap_count - 1,
            line=line,
            synth=self._in_synth,
        )
        self.summary.conditions.append(cond)
        self.control_deps |= free_syms(expr)
        return cond

    def _sync_synth(self, frames):
        if not frames:
            self._in_synth = False
            return
        frame = frames[-1]
        self._in_synth = (
            frame.synth_all or frame.block_pos < frame.trace.synth_blocks
        )

    # ------------------------------------------------------------------ #

    def run(self):
        """Execute the whole recorded path; returns the ThreadSummary."""
        self.emit(ev.START)
        if self.resume is not None:
            frames = self._build_resume_frames()
        else:
            root = _Frame(self.trace.root, self.program.function(self.trace.root.func))
            for pname, value in zip(root.func.params, self.args):
                root.locals[pname] = (
                    wrap(value) if not isinstance(value, ThreadHandle) else value
                )
            frames = [root]
        self._sync_synth(frames)
        while frames:
            frame = frames[-1]
            outcome = self._run_frame_step(frame, frames)
            if outcome == "done":
                break
        self._finalize_bug()
        return self.summary

    def _resume_value(self, value):
        if isinstance(value, tuple) and len(value) == 2 and value[0] == "handle":
            return ThreadHandle(value[1])
        return wrap(value)

    def _build_resume_frames(self):
        """Seed the frame stack from a checkpoint snapshot: the decoded
        trace chain of resumed activations pairs with the snapshotted
        frames (function, position, concrete locals and operand stack)."""
        self.child_count = self.resume.children
        frames = []
        node = self.trace.root
        for i, snap in enumerate(self.resume.frames):
            if node is None or not node.resumed:
                raise SymExecError(
                    "thread %s: checkpoint has %d open frames but the log "
                    "resumed only %d" % (self.thread, len(self.resume.frames), i),
                    thread=self.thread,
                )
            if node.func != snap.func:
                raise SymExecError(
                    "thread %s: resumed frame %s does not match snapshot %s"
                    % (self.thread, node.func, snap.func),
                    thread=self.thread,
                )
            frame = _Frame(node, self.program.function(snap.func))
            frame.ip = snap.ip
            frame.locals = {k: self._resume_value(v) for k, v in snap.locals.items()}
            frame.stack = [self._resume_value(v) for v in snap.stack]
            child = node.calls[0] if node.calls and node.calls[0].resumed else None
            if child is not None:
                frame.call_pos = 1
            frames.append(frame)
            node = child
        return frames

    def _run_frame_step(self, frame, frames):
        """Execute instructions of the current frame until it calls,
        returns, or the path ends."""
        trace = frame.trace
        while True:
            instrs = frame.instrs()
            # Stop position for incomplete frames.
            if (
                not trace.complete
                and frame.block_pos == len(trace.blocks) - 1
                and frame.ip >= (trace.stop_ip if trace.stop_ip is not None else 0)
            ):
                self._emit_wait_stage_saps(trace, instrs, frame)
                return "done"
            if frame.ip >= len(instrs):
                self.error(
                    "ran off the end of block %d in %s"
                    % (frame.block_id, frame.func.name)
                )
            instr = instrs[frame.ip]
            op = instr.op
            if op == bc.CALL:
                callee_name = instr.arg
                nargs = instr.arg2
                args = frame.stack[len(frame.stack) - nargs :] if nargs else []
                del frame.stack[len(frame.stack) - nargs :]
                if frame.call_pos >= len(trace.calls):
                    self.error("log has no activation for call to %s" % callee_name, instr)
                child_trace = trace.calls[frame.call_pos]
                frame.call_pos += 1
                if child_trace.func != callee_name:
                    self.error(
                        "log activation %s does not match call to %s"
                        % (child_trace.func, callee_name),
                        instr,
                    )
                frame.ip += 1  # return point
                child = _Frame(child_trace, self.program.function(callee_name))
                child.synth_all = child.synth_all or self._in_synth
                for pname, value in zip(child.func.params, args):
                    child.locals[pname] = value
                frames.append(child)
                self._sync_synth(frames)
                return "call"
            if op == bc.RET:
                value = frame.stack.pop()
                frames.pop()
                self._sync_synth(frames)
                if frames:
                    frames[-1].stack.append(value)
                    return "ret"
                self.emit(ev.EXIT)
                return "done"
            if op in (bc.JUMP, bc.BRANCH):
                self._exec_terminator(frame, instr)
                continue
            self._exec_straightline(frame, instr)
            frame.ip += 1

    def _advance_block(self, frame, expected_from):
        frame.block_pos += 1
        if frame.block_pos >= len(frame.trace.blocks):
            self.error(
                "path for %s ends inside block %d but control continues"
                % (frame.func.name, expected_from)
            )
        frame.ip = 0
        if not frame.synth_all:
            self._in_synth = frame.block_pos < frame.trace.synth_blocks

    def _exec_terminator(self, frame, instr):
        if instr.op == bc.JUMP:
            self._advance_block(frame, frame.block_id)
            if frame.block_id != instr.arg:
                self.error("decoded path disagrees with JUMP target", instr)
            return
        # BRANCH
        cond = frame.stack.pop()
        src = frame.block_id
        self._advance_block(frame, src)
        taken_block = frame.block_id
        if taken_block == instr.arg:
            expected_true = True
        elif taken_block == instr.arg2:
            expected_true = False
        else:
            self.error("decoded path disagrees with BRANCH targets", instr)
        cond = wrap(cond) if not isinstance(cond, ThreadHandle) else self.error(
            "thread handle used as branch condition", instr
        )
        self.add_condition(cond if expected_true else mk_not(cond), line=instr.line)

    # -- straight-line ops ---------------------------------------------------

    def _exec_straightline(self, frame, instr):
        op = instr.op
        handler = self._DISPATCH.get(op)
        if handler is None:
            self.error("unexpected opcode %s" % op, instr)
        handler(self, frame, instr)

    def _op_const(self, frame, instr):
        frame.stack.append(Const(instr.arg))

    def _op_load_local(self, frame, instr):
        try:
            frame.stack.append(frame.locals[instr.arg])
        except KeyError:
            self.error("read of unassigned local %r" % instr.arg, instr)

    def _op_store_local(self, frame, instr):
        frame.locals[instr.arg] = frame.stack.pop()

    def _op_binop(self, frame, instr):
        right = frame.stack.pop()
        left = frame.stack.pop()
        if isinstance(left, ThreadHandle) or isinstance(right, ThreadHandle):
            self.error("arithmetic on thread handles", instr)
        frame.stack.append(mk_binop(instr.arg, left, right))

    def _op_unop(self, frame, instr):
        operand = frame.stack.pop()
        if isinstance(operand, ThreadHandle):
            self.error("arithmetic on thread handles", instr)
        frame.stack.append(mk_unop(instr.arg, operand))

    def _op_pop(self, frame, instr):
        frame.stack.pop()

    # -- memory ---------------------------------------------------------------

    def _concrete_index(self, expr, instr):
        expr = wrap(expr)
        if not isinstance(expr, Const):
            return None
        return expr.value

    def _op_load_global(self, frame, instr):
        name = instr.arg
        if name in self.shared:
            sym = Sym("R.%s.%d" % (self.thread, self.sap_count))
            sap = self.emit(
                ev.READ, addr=(name,), value=sym, line=instr.line
            )
            self.summary.reads[sym.name] = sap
            frame.stack.append(sym)
        else:
            frame.stack.append(self.local_cells[(name,)])

    def _op_store_global(self, frame, instr):
        value = frame.stack.pop()
        name = instr.arg
        if name in self.shared:
            if isinstance(value, ThreadHandle):
                self.error("cannot store a thread handle to shared memory", instr)
            value = wrap(value)
            self.emit(
                ev.WRITE,
                addr=(name,),
                value=value,
                line=instr.line,
                deps=free_syms(value),
            )
        else:
            self.local_cells[(name,)] = value

    def _op_load_elem(self, frame, instr):
        index = frame.stack.pop()
        name = instr.arg
        if name in self.shared:
            idx = self._concrete_index(index, instr)
            if idx is None:
                self.error(
                    "shared array %r read with symbolic index (unsupported: "
                    "read-write constraints need concrete addresses)" % name,
                    instr,
                )
            self._check_bounds(name, idx, instr)
            sym = Sym("R.%s.%d" % (self.thread, self.sap_count))
            sap = self.emit(ev.READ, addr=(name, idx), value=sym, line=instr.line)
            self.summary.reads[sym.name] = sap
            frame.stack.append(sym)
            return
        frame.stack.append(self._local_array_read(name, index, instr))

    def _op_store_elem(self, frame, instr):
        value = frame.stack.pop()
        index = frame.stack.pop()
        name = instr.arg
        if name in self.shared:
            idx = self._concrete_index(index, instr)
            if idx is None:
                self.error(
                    "shared array %r written with symbolic index (unsupported)"
                    % name,
                    instr,
                )
            self._check_bounds(name, idx, instr)
            value = wrap(value)
            self.emit(
                ev.WRITE,
                addr=(name, idx),
                value=value,
                line=instr.line,
                deps=free_syms(value),
            )
            return
        self._local_array_write(name, index, value, instr)

    def _check_bounds(self, name, idx, instr):
        size = self.program.symbols.globals[name].size
        if not 0 <= idx < size:
            self.error("index %d out of bounds for %s[%d]" % (idx, name, size), instr)

    def _local_array_read(self, name, index, instr):
        """Delayed symbolic-address resolution (paper §5): fold the ordered
        write list into an ITE chain."""
        overlay = self.array_overlays.get(name)
        idx_expr = wrap(index)
        if overlay is None:
            idx = self._concrete_index(idx_expr, instr)
            if idx is None:
                # First symbolic access: build the chain over initial cells.
                self.array_overlays[name] = []
                overlay = self.array_overlays[name]
            else:
                self._check_bounds(name, idx, instr)
                return self.local_cells[(name, idx)]
        value = self._base_array_value(name, idx_expr, instr)
        for w_idx, w_val in overlay:
            value = mk_ite(mk_binop("==", idx_expr, w_idx), w_val, value)
        return value

    def _base_array_value(self, name, idx_expr, instr):
        idx = self._concrete_index(idx_expr, instr)
        if idx is not None:
            self._check_bounds(name, idx, instr)
            return self.local_cells[(name, idx)]
        # Fully symbolic base read: chain over every cell.
        size = self.program.symbols.globals[name].size
        value = Const(0)
        for i in range(size):
            value = mk_ite(
                mk_binop("==", idx_expr, Const(i)), self.local_cells[(name, i)], value
            )
        return value

    def _local_array_write(self, name, index, value, instr):
        idx_expr = wrap(index)
        overlay = self.array_overlays.get(name)
        idx = self._concrete_index(idx_expr, instr)
        if overlay is None:
            if idx is not None:
                self._check_bounds(name, idx, instr)
                self.local_cells[(name, idx)] = wrap(value)
                return
            self.array_overlays[name] = []
            overlay = self.array_overlays[name]
        overlay.append((idx_expr, wrap(value)))

    # -- synchronization --------------------------------------------------------

    def _op_spawn(self, frame, instr):
        nargs = instr.arg2
        args = frame.stack[len(frame.stack) - nargs :] if nargs else []
        del frame.stack[len(frame.stack) - nargs :]
        concrete_args = []
        for arg in args:
            if isinstance(arg, ThreadHandle):
                concrete_args.append(arg)
                continue
            arg = wrap(arg)
            if not isinstance(arg, Const):
                self.error(
                    "spawn argument is symbolic (depends on shared reads); "
                    "CLAP requires concrete thread arguments",
                    instr,
                )
            concrete_args.append(arg.value)
        self.child_count += 1
        child_name = "%s:%d" % (self.thread, self.child_count)
        self.summary.children.append(child_name)
        self._spawn_args[child_name] = (instr.arg, concrete_args)
        self.emit(ev.FORK, addr=child_name, line=instr.line)
        frame.stack.append(ThreadHandle(child_name))

    def _op_join(self, frame, instr):
        handle = frame.stack.pop()
        if not isinstance(handle, ThreadHandle):
            self.error("join target is not a concrete thread handle", instr)
        self.emit(ev.JOIN, addr=handle.name, line=instr.line)

    def _op_lock(self, frame, instr):
        self.emit(ev.LOCK, addr=instr.arg, line=instr.line)

    def _op_unlock(self, frame, instr):
        self.emit(ev.UNLOCK, addr=instr.arg, line=instr.line)

    def _op_wait(self, frame, instr):
        # Desugars exactly like the runtime: unlock, wait, lock.
        self.emit(ev.UNLOCK, addr=instr.arg2, line=instr.line)
        self.emit(ev.WAIT, addr=instr.arg, line=instr.line)
        self.emit(ev.LOCK, addr=instr.arg2, line=instr.line)

    def _op_signal(self, frame, instr):
        self.emit(ev.SIGNAL, addr=instr.arg, line=instr.line)

    def _op_broadcast(self, frame, instr):
        self.emit(ev.BROADCAST, addr=instr.arg, line=instr.line)

    def _emit_wait_stage_saps(self, trace, instrs, frame):
        """A thread stopped inside wait() already committed sub-SAPs."""
        if trace.wait_stage <= 0:
            return
        instr = instrs[frame.ip] if frame.ip < len(instrs) else None
        if instr is None or instr.op != bc.WAIT:
            raise SymExecError(
                "thread %s: wait_stage set but stop instruction is not WAIT"
                % self.thread,
                thread=self.thread,
            )
        self.emit(ev.UNLOCK, addr=instr.arg2, line=instr.line)
        if trace.wait_stage >= 2:
            self.emit(ev.WAIT, addr=instr.arg, line=instr.line)

    # -- checks -----------------------------------------------------------------

    def _op_assert(self, frame, instr):
        cond = frame.stack.pop()
        cond = wrap(cond)
        record = (cond, instr.line, len(self.summary.conditions))
        self.summary.asserts.append(record)
        # Provisionally treat it as a passing assert; _finalize_bug flips
        # the failing one.
        if not isinstance(cond, Const):
            self.add_condition(cond, line=instr.line)
        elif not cond.value and not self._matches_bug(instr.line) and not self._in_synth:
            self.error("recorded path has a concretely failing assert", instr)

    def _matches_bug(self, line):
        return (
            self.bug is not None
            and self.bug.thread == self.thread
            and self.bug.line == line
        )

    def _finalize_bug(self):
        if self.bug is None or self.bug.thread != self.thread:
            return
        for cond, line, _ in reversed(self.summary.asserts):
            if line == self.bug.line:
                self.summary.bug_expr = mk_not(cond)
                self.summary.bug_line = line
                # Remove the provisional passing-condition for this assert
                # (it is the last condition with that line, if symbolic).
                for i in range(len(self.summary.conditions) - 1, -1, -1):
                    c = self.summary.conditions[i]
                    if c.line == line and c.expr == cond:
                        del self.summary.conditions[i]
                        break
                return
        raise SymExecError(
            "bug at %s line %d not found on recorded path of thread %s"
            % (self.bug.message, self.bug.line, self.thread),
            thread=self.thread,
        )

    def _op_assume(self, frame, instr):
        cond = frame.stack.pop()
        self.add_condition(wrap(cond), line=instr.line)

    def _op_yield(self, frame, instr):
        self.emit(ev.YIELD, line=instr.line)

    def _op_fence(self, frame, instr):
        self.emit(ev.FENCE, line=instr.line)

    def _op_print(self, frame, instr):
        nargs = instr.arg
        if nargs:
            del frame.stack[len(frame.stack) - nargs :]

    _DISPATCH = {
        bc.CONST: _op_const,
        bc.LOAD_LOCAL: _op_load_local,
        bc.STORE_LOCAL: _op_store_local,
        bc.LOAD_GLOBAL: _op_load_global,
        bc.STORE_GLOBAL: _op_store_global,
        bc.LOAD_ELEM: _op_load_elem,
        bc.STORE_ELEM: _op_store_elem,
        bc.BINOP: _op_binop,
        bc.UNOP: _op_unop,
        bc.POP: _op_pop,
        bc.SPAWN: _op_spawn,
        bc.JOIN: _op_join,
        bc.LOCK: _op_lock,
        bc.UNLOCK: _op_unlock,
        bc.WAIT: _op_wait,
        bc.SIGNAL: _op_signal,
        bc.BROADCAST: _op_broadcast,
        bc.ASSERT: _op_assert,
        bc.ASSUME: _op_assume,
        bc.YIELD: _op_yield,
        bc.FENCE: _op_fence,
        bc.PRINT: _op_print,
    }


def execute_recorded_paths(program, decoded, shared, bug=None, checkpoint=None):
    """Symbolically execute every thread's recorded path.

    ``decoded`` is {thread_name: DecodedThreadPath}.  Spawn arguments flow
    from parent to child: a parent's executor records the concrete args of
    each fork, which seed the child's root frame.  Threads are therefore
    processed parents-first (names are hierarchical, so sorting by name
    depth works).

    When ``checkpoint`` is given (see :mod:`repro.runtime.checkpoint`),
    threads whose decoded root is *resumed* take their frames, locals and
    fork counters from the snapshot instead of spawn records.

    Returns {thread_name: ThreadSummary}.
    """
    summaries = {}
    spawn_args = {"1": ("main", [])}
    for name in sorted(decoded, key=lambda n: (n.count(":"), n)):
        trace = decoded[name]
        if trace.root.resumed:
            if checkpoint is None:
                raise SymExecError(
                    "thread %s log resumes mid-path but no checkpoint given" % name,
                    thread=name,
                )
            executor = SymbolicExecutor(
                program,
                name,
                trace,
                shared,
                bug=bug,
                resume=checkpoint.thread(name),
            )
            summaries[name] = executor.run()
            spawn_args.update(executor._spawn_args)
            continue
        if name not in spawn_args:
            raise SymExecError(
                "no spawn record for thread %s (parent missing from logs?)" % name,
                thread=name,
            )
        func_name, args = spawn_args[name]
        if trace.root.func != func_name:
            raise SymExecError(
                "thread %s log is for %s but parent spawned %s"
                % (name, trace.root.func, func_name),
                thread=name,
            )
        executor = SymbolicExecutor(
            program, name, trace, shared, bug=bug, args=args
        )
        summaries[name] = executor.run()
        spawn_args.update(executor._spawn_args)
    return summaries


# -- parallel mode --------------------------------------------------------

# Below this many decoded basic blocks (summed over all threads) the fork
# and pickling overhead of a worker pool outweighs the symbolic execution
# itself, so small traces stay serial.
PARALLEL_MIN_BLOCKS = 512


def _symexec_job(spec, attempt=1):
    """Worker-pool executor: symbolically run ONE thread's recorded path.

    The spec carries pickled blobs (program, decoded trace, bug, args)
    because specs cross the process boundary as plain dicts.  Expected
    failures come back as structured ``symexec_error`` outcomes so the
    parent re-raises a :class:`SymExecError` instead of burning the
    pool's crash-retry budget on a deterministic error.
    """
    import pickle

    program = pickle.loads(spec["program"])
    trace = pickle.loads(spec["trace"])
    bug = pickle.loads(spec["bug"])
    executor = SymbolicExecutor(
        program,
        spec["thread"],
        trace,
        set(spec["shared"]),
        bug=bug,
        args=pickle.loads(spec["args"]),
    )
    try:
        summary = executor.run()
    except SymExecError as exc:
        return {
            "status": "symexec_error",
            "error": str(exc),
            "thread": exc.thread or spec["thread"],
        }
    return {
        "status": "ok",
        "summary": pickle.dumps(summary),
        "spawn_args": pickle.dumps(executor._spawn_args),
    }


def parallel_summaries(
    program,
    decoded,
    shared,
    bug=None,
    workers=2,
    min_blocks=PARALLEL_MIN_BLOCKS,
    timeout=300.0,
):
    """:func:`execute_recorded_paths`, fanned over a worker pool.

    Per-thread symbolic execution is embarrassingly parallel *within a
    spawn generation*: a thread's re-execution needs only its parent's
    recorded spawn arguments, so threads are processed in waves by name
    depth (``1`` first, then ``1:1``/``1:2``, …), each wave distributed
    across a :class:`repro.service.pool.WorkerPool`.  Produces summaries
    equal (``==``) to the serial path's — byte-identical pickles are NOT
    guaranteed, because frozenset fields serialize in per-process hash
    order; ``tests/analysis/test_parallel_symexec.py`` checks the
    semantic equality.

    Falls back to the serial implementation when the trace is small
    (``min_blocks``), when ``workers < 2``, for checkpoint-resumed traces
    (those need the serial resume plumbing), or inside a daemonic worker
    process (nested pools cannot spawn children).
    """
    import multiprocessing
    import pickle

    total_blocks = sum(t.total_blocks() for t in decoded.values())
    if (
        workers < 2
        or len(decoded) < 3  # the root wave is alone anyway
        or total_blocks < min_blocks
        or any(t.root.resumed for t in decoded.values())
        or multiprocessing.current_process().daemon
    ):
        return execute_recorded_paths(program, decoded, shared, bug=bug)

    from repro.service.pool import WorkerPool

    program_blob = pickle.dumps(program)
    bug_blob = pickle.dumps(bug)
    shared_list = sorted(shared)

    by_depth = {}
    for name in decoded:
        by_depth.setdefault(name.count(":"), []).append(name)

    summaries = {}
    spawn_args = {"1": ("main", [])}
    for depth in sorted(by_depth):
        wave = sorted(by_depth[depth])
        jobs = []
        for name in wave:
            if name not in spawn_args:
                raise SymExecError(
                    "no spawn record for thread %s (parent missing from logs?)"
                    % name,
                    thread=name,
                )
            func_name, args = spawn_args[name]
            trace = decoded[name]
            if trace.root.func != func_name:
                raise SymExecError(
                    "thread %s log is for %s but parent spawned %s"
                    % (name, trace.root.func, func_name),
                    thread=name,
                )
            jobs.append((name, trace, args))

        if len(jobs) == 1:
            # A one-thread wave (always the root) runs inline.
            name, trace, args = jobs[0]
            executor = SymbolicExecutor(
                program, name, trace, shared, bug=bug, args=args
            )
            summaries[name] = executor.run()
            spawn_args.update(executor._spawn_args)
            continue

        specs = [
            {
                "thread": name,
                "program": program_blob,
                "trace": pickle.dumps(trace),
                "args": pickle.dumps(args),
                "bug": bug_blob,
                "shared": shared_list,
                "timeout": timeout,
                "max_attempts": 2,
                "backoff": 0.1,
            }
            for name, trace, args in jobs
        ]
        pool = WorkerPool(_symexec_job, jobs=min(workers, len(jobs)))
        outcomes = pool.run(specs)
        for (name, _trace, _args), outcome in zip(jobs, outcomes):
            if outcome.get("status") == "symexec_error":
                raise SymExecError(
                    outcome.get("error", "symbolic execution failed"),
                    thread=outcome.get("thread", name),
                )
            if outcome.get("status") != "ok":
                raise SymExecError(
                    "worker %s for thread %s: %s"
                    % (
                        outcome.get("status", "failed"),
                        name,
                        outcome.get("reason", "no result"),
                    ),
                    thread=name,
                )
            summaries[name] = pickle.loads(outcome["summary"])
            spawn_args.update(pickle.loads(outcome["spawn_args"]))
    # Serial iteration order is (depth, name); the waves above preserve it.
    return summaries
