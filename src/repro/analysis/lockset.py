"""Eraser-style dynamic lockset race detection.

A companion analysis (the paper's static Locksmith pass plays the SAP-
shrinking role; see :mod:`repro.analysis.escape`): given one execution's
SAP event stream, flag shared locations accessed with inconsistent lock
protection.  Useful in two places:

* tests cross-check that every benchmark's seeded bug is visible as a
  lockset violation (or a pure ordering bug);
* the examples use it to show which variables CLAP's constraints will have
  to resolve races for.

The algorithm is classic Eraser with a minimal state machine: a location
starts *virgin*; accesses by a single thread keep it *exclusive*; the
first second-thread access arms candidate-lockset refinement; an access
with an empty candidate set reports a violation.  One standard refinement
is included: when every *other* past accessor has exited (visible as exit
SAPs in the stream), the location collapses back to exclusive ownership —
this silences the classic fork/join false positive (main reading results
after joining the workers).
"""

from dataclasses import dataclass, field

from repro.runtime import events as ev

VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"  # shared read-only
SHARED_MODIFIED = "shared-modified"


@dataclass
class LocationState:
    addr: tuple
    state: str = VIRGIN
    owner: str | None = None
    candidate_locks: set | None = None  # None = not yet refined
    accessors: set = field(default_factory=set)
    violated: bool = False
    first_violation: tuple | None = None  # (thread, line)


@dataclass
class LocksetReport:
    locations: dict = field(default_factory=dict)

    def violations(self):
        return sorted(
            (state.addr for state in self.locations.values() if state.violated),
            key=repr,
        )


def analyze_locksets(events):
    """Run Eraser over a SAP event sequence (memory order).

    ``events`` is an iterable of SAPs, e.g. ``ExecutionResult.events``.
    Returns a :class:`LocksetReport`.
    """
    held = {}  # thread -> set of mutexes
    exited = set()
    report = LocksetReport()
    for sap in events:
        thread = sap.thread
        if sap.kind == ev.LOCK:
            held.setdefault(thread, set()).add(sap.addr)
            continue
        if sap.kind == ev.UNLOCK:
            held.setdefault(thread, set()).discard(sap.addr)
            continue
        if sap.kind == ev.EXIT:
            exited.add(thread)
            continue
        if not sap.is_data:
            continue
        loc = report.locations.get(sap.addr)
        if loc is None:
            loc = LocationState(addr=sap.addr)
            report.locations[sap.addr] = loc
        _access(loc, thread, sap, held.get(thread, set()), exited)
    return report


def _access(loc, thread, sap, locks, exited):
    loc.accessors.add(thread)
    # Last thread standing: if every other past accessor has exited, the
    # location is exclusively owned again (fork/join ordering, not a race).
    others = loc.accessors - {thread}
    if others and others <= exited:
        loc.state = EXCLUSIVE
        loc.owner = thread
        loc.candidate_locks = None
        loc.accessors = {thread}
    if loc.state == VIRGIN:
        loc.state = EXCLUSIVE
        loc.owner = thread
        return
    if loc.state == EXCLUSIVE:
        if thread == loc.owner:
            return
        loc.state = SHARED_MODIFIED if sap.is_write else SHARED
        loc.candidate_locks = set(locks)
        _check(loc, thread, sap)
        return
    # SHARED / SHARED_MODIFIED: refine the candidate set.
    if sap.is_write and loc.state == SHARED:
        loc.state = SHARED_MODIFIED
    loc.candidate_locks &= locks
    _check(loc, thread, sap)


def _check(loc, thread, sap):
    if loc.state == SHARED_MODIFIED and not loc.candidate_locks and not loc.violated:
        loc.violated = True
        loc.first_violation = (thread, sap.line)
