"""Offline analyses: static shared-access detection and path-directed
symbolic execution (CLAP's phase 2 front half)."""

from repro.analysis.escape import shared_variables
from repro.analysis.symbolic import (
    Const,
    Ite,
    Sym,
    SymExpr,
    free_syms,
    mk_binop,
    mk_ite,
    mk_not,
    mk_unop,
    sym_eval,
)
from repro.analysis.symexec import (
    SymbolicExecutor,
    SymExecError,
    ThreadSummary,
    execute_recorded_paths,
)

__all__ = [
    "shared_variables",
    "SymExpr",
    "Sym",
    "Const",
    "Ite",
    "mk_binop",
    "mk_unop",
    "mk_not",
    "mk_ite",
    "sym_eval",
    "free_syms",
    "SymbolicExecutor",
    "SymExecError",
    "ThreadSummary",
    "execute_recorded_paths",
]
