"""Symbolic integer/boolean expressions.

The symbolic executor marks the value returned by every shared read with a
fresh :class:`Sym`; every other value is either a Python int (concrete) or
an expression tree over those symbols.  Expressions are immutable; the
``mk_*`` smart constructors constant-fold eagerly so purely thread-local
computation stays concrete and cheap.

Booleans are ints (0/1), exactly as in the concrete runtime, so the same
operator tables produce identical results — a property the validating
solver relies on (a candidate schedule is checked by *evaluating* these
expressions concretely).
"""

from dataclasses import dataclass

from repro.runtime.values import eval_binop, eval_unop


class SymExpr:
    """Base class of symbolic expression nodes."""

    __slots__ = ()

    def is_concrete(self):
        return False

    def __reduce__(self):
        # Frozen dataclasses with __slots__ break default unpickling (the
        # slot-state restore goes through the blocked __setattr__), and
        # expression trees cross process/disk boundaries in the parallel
        # symexec workers and the analysis cache — rebuild via __init__,
        # whose field order matches the slots by construction.
        return (type(self), tuple(getattr(self, s) for s in self.__slots__))


@dataclass(frozen=True)
class Sym(SymExpr):
    """A fresh unknown: the value returned by one shared read SAP."""

    __slots__ = ("name",)
    name: str

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Const(SymExpr):
    __slots__ = ("value",)
    value: int

    def is_concrete(self):
        return True

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class BinOp(SymExpr):
    __slots__ = ("op", "left", "right")
    op: str
    left: SymExpr
    right: SymExpr

    def __repr__(self):
        return "(%r %s %r)" % (self.left, self.op, self.right)


@dataclass(frozen=True)
class UnOp(SymExpr):
    __slots__ = ("op", "operand")
    op: str
    operand: SymExpr

    def __repr__(self):
        return "(%s%r)" % (self.op, self.operand)


@dataclass(frozen=True)
class Ite(SymExpr):
    """If-then-else — produced by symbolic-address resolution (paper §5)."""

    __slots__ = ("cond", "then", "els")
    cond: SymExpr
    then: SymExpr
    els: SymExpr

    def __repr__(self):
        return "ite(%r, %r, %r)" % (self.cond, self.then, self.els)


def wrap(value):
    """Lift a Python int to an expression (identity on expressions)."""
    if isinstance(value, SymExpr):
        return value
    return Const(int(value))


def mk_binop(op, left, right):
    left = wrap(left)
    right = wrap(right)
    if isinstance(left, Const) and isinstance(right, Const):
        return Const(eval_binop(op, left.value, right.value))
    # A few identities that keep loop-generated expressions small.
    if op == "+":
        if isinstance(left, Const) and left.value == 0:
            return right
        if isinstance(right, Const) and right.value == 0:
            return left
    elif op == "-":
        if isinstance(right, Const) and right.value == 0:
            return left
    elif op == "*":
        if isinstance(left, Const) and left.value == 1:
            return right
        if isinstance(right, Const) and right.value == 1:
            return left
        if (isinstance(left, Const) and left.value == 0) or (
            isinstance(right, Const) and right.value == 0
        ):
            return Const(0)
    elif op == "&&":
        if isinstance(left, Const):
            return right if left.value else Const(0)
        if isinstance(right, Const):
            return left if right.value else Const(0)
    elif op == "||":
        if isinstance(left, Const):
            return Const(1) if left.value else right
        if isinstance(right, Const):
            return Const(1) if right.value else left
    return BinOp(op, left, right)


def mk_unop(op, operand):
    operand = wrap(operand)
    if isinstance(operand, Const):
        return Const(eval_unop(op, operand.value))
    if op == "!" and isinstance(operand, UnOp) and operand.op == "!":
        # !!x is not x itself (x may be any int), but !!!x == !x.
        return operand.operand if _is_boolean(operand.operand) else UnOp(op, operand)
    return UnOp(op, operand)


def _is_boolean(expr):
    return (
        isinstance(expr, BinOp)
        and expr.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||")
    ) or (isinstance(expr, UnOp) and expr.op == "!")


def mk_not(expr):
    return mk_unop("!", expr)


def mk_ite(cond, then, els):
    cond = wrap(cond)
    then = wrap(then)
    els = wrap(els)
    if isinstance(cond, Const):
        return then if cond.value else els
    if then == els:
        return then
    return Ite(cond, then, els)


def sym_eval(expr, env):
    """Evaluate ``expr`` with ``env`` mapping Sym names to ints.

    Raises KeyError when a needed symbol is unassigned — validators use
    this to detect not-yet-resolvable conditions.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        return env[expr.name]
    if isinstance(expr, BinOp):
        return eval_binop(expr.op, sym_eval(expr.left, env), sym_eval(expr.right, env))
    if isinstance(expr, UnOp):
        return eval_unop(expr.op, sym_eval(expr.operand, env))
    if isinstance(expr, Ite):
        if sym_eval(expr.cond, env):
            return sym_eval(expr.then, env)
        return sym_eval(expr.els, env)
    if isinstance(expr, int):
        return expr
    raise TypeError("cannot evaluate %r" % (expr,))


def free_syms(expr, acc=None):
    """The set of Sym names occurring in ``expr``."""
    if acc is None:
        acc = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Sym):
            acc.add(node.name)
        elif isinstance(node, BinOp):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, UnOp):
            stack.append(node.operand)
        elif isinstance(node, Ite):
            stack.append(node.cond)
            stack.append(node.then)
            stack.append(node.els)
    return acc


def expr_size(expr):
    """Number of nodes — the unit for the paper's '#Constraints' metric."""
    if isinstance(expr, (Const, Sym)):
        return 1
    if isinstance(expr, BinOp):
        return 1 + expr_size(expr.left) + expr_size(expr.right)
    if isinstance(expr, UnOp):
        return 1 + expr_size(expr.operand)
    if isinstance(expr, Ite):
        return 1 + expr_size(expr.cond) + expr_size(expr.then) + expr_size(expr.els)
    return 1
