"""Static shared-variable ("escape") analysis.

CLAP shrinks its constraint system by marking only *shared* accesses as
SAPs, using a static analysis in the spirit of Locksmith (the paper cites
[30]): conservative, with zero runtime cost.  Ours classifies each data
global by which *thread roots* can reach it:

* thread roots are ``main`` plus every function that appears as a spawn
  target anywhere in the program;
* a function's accessed-global set is computed transitively over the call
  graph (spawns are not calls — the spawned function is its own root);
* a global is shared when two different roots can access it, or when a
  single spawned root that may run in **multiple thread instances**
  accesses it (>= 2 spawn sites, or a spawn site inside a loop);
* explicit ``shared``/``local`` declarations override the inference.

The result is sound for SAP detection (it may over-approximate, never
under-approximate) provided declared ``local`` annotations are honest —
exactly the contract of the paper's use of Locksmith.
"""

from repro.minilang import bytecode as bc


def _direct_accesses(func):
    """Globals directly read/written by ``func``'s bytecode."""
    accessed = set()
    for block in func.blocks:
        for instr in block.instrs:
            if instr.op in (
                bc.LOAD_GLOBAL,
                bc.STORE_GLOBAL,
                bc.LOAD_ELEM,
                bc.STORE_ELEM,
            ):
                accessed.add(instr.arg)
    return accessed


def _direct_callees(func):
    callees = set()
    for block in func.blocks:
        for instr in block.instrs:
            if instr.op == bc.CALL:
                callees.add(instr.arg)
    return callees


def _spawn_sites(program):
    """All (function, block_id, target) spawn sites in the program."""
    sites = []
    for func in program.functions.values():
        for block in func.blocks:
            for instr in block.instrs:
                if instr.op == bc.SPAWN:
                    sites.append((func.name, block.id, instr.arg))
    return sites


def _blocks_in_cycles(func):
    """Block ids that sit on some CFG cycle (loop bodies and headers)."""
    # A block is in a cycle iff it can reach itself.  CFGs are small, so a
    # per-block DFS is fine.
    in_cycle = set()
    succ = {b.id: b.successors() for b in func.blocks}
    for start in succ:
        stack = list(succ[start])
        seen = set()
        while stack:
            node = stack.pop()
            if node == start:
                in_cycle.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succ[node])
    return in_cycle


def transitive_accesses(program):
    """{function: set of globals reachable through calls} (fixpoint)."""
    direct = {name: _direct_accesses(f) for name, f in program.functions.items()}
    callees = {name: _direct_callees(f) for name, f in program.functions.items()}
    result = {name: set(acc) for name, acc in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in result:
            for callee in callees[name]:
                if callee in result and not result[callee] <= result[name]:
                    result[name] |= result[callee]
                    changed = True
    return result


def thread_roots(program):
    """{root function: multiplicity} where multiplicity is 1 or 2 ("many")."""
    roots = {"main": 1}
    sites_by_target = {}
    for func_name, block_id, target in _spawn_sites(program):
        sites_by_target.setdefault(target, []).append((func_name, block_id))
    cycles_cache = {}
    for target, sites in sites_by_target.items():
        multiplicity = 1
        if len(sites) >= 2:
            multiplicity = 2
        else:
            func_name, block_id = sites[0]
            if func_name not in cycles_cache:
                cycles_cache[func_name] = _blocks_in_cycles(
                    program.functions[func_name]
                )
            if block_id in cycles_cache[func_name]:
                multiplicity = 2
        # A root spawned by a function that can itself run in many threads
        # also has multiplicity many; one propagation pass suffices for the
        # two-level spawn patterns MiniLang programs use, and the fixpoint
        # below covers deeper nesting.
        roots[target] = max(roots.get(target, 0), multiplicity)
    # Propagate multiplicity down spawn chains to a fixpoint.
    changed = True
    while changed:
        changed = False
        for func_name, _, target in _spawn_sites(program):
            if roots.get(func_name, 0) >= 2 and roots.get(target, 0) < 2:
                roots[target] = 2
                changed = True
    return roots


def shared_variables(program):
    """The set of data-global names CLAP must treat as shared.

    This is the "#SV" column of Table 1.
    """
    return {
        name for name, (is_shared, _) in classify_variables(program).items() if is_shared
    }


def classify_variables(program):
    """{data global: (shared?, reason)} — the full classification behind
    :func:`shared_variables`, with a human-readable reason per variable.

    Used by ``repro analyze`` to show *why* each global was classified,
    not just the final shared set.
    """
    accesses = transitive_accesses(program)
    roots = thread_roots(program)
    accessed_by = {}  # global -> set of roots
    for root in roots:
        if root not in accesses:
            continue
        for name in accesses[root]:
            accessed_by.setdefault(name, set()).add(root)

    classified = {}
    for info in program.symbols.globals.values():
        if not info.is_data:
            continue
        if info.sharing == "shared":
            classified[info.name] = (True, "declared 'shared'")
            continue
        if info.sharing == "local":
            classified[info.name] = (False, "declared 'local'")
            continue
        owners = accessed_by.get(info.name, set())
        multi = sorted(r for r in owners if roots[r] >= 2)
        if len(owners) >= 2:
            classified[info.name] = (
                True,
                "reached by threads %s" % ", ".join(sorted(owners)),
            )
        elif multi:
            classified[info.name] = (
                True,
                "reached by multiple instances of thread %s" % multi[0],
            )
        elif owners:
            classified[info.name] = (
                False,
                "only reached by single thread %s" % sorted(owners)[0],
            )
        else:
            classified[info.name] = (False, "never accessed")
    return classified
