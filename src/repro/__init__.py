"""repro — a reproduction of CLAP (Huang, Zhang, Dolby; PLDI 2013).

CLAP reproduces concurrency failures by recording only thread-local
execution paths online, then computing a failure-inducing schedule offline
with constraint solving.  See README.md for the architecture and DESIGN.md
for the paper-to-repo mapping.

Quickstart::

    from repro import reproduce_bug

    report = reproduce_bug(minilang_source, memory_model="sc")
    assert report.reproduced
    print(report.schedule, report.context_switches)
"""

from repro.core.clap import (
    ClapConfig,
    ClapPipeline,
    ClapReport,
    reproduce_bug,
)
from repro.minilang import compile_source

__version__ = "1.0.0"

__all__ = [
    "ClapConfig",
    "ClapPipeline",
    "ClapReport",
    "reproduce_bug",
    "compile_source",
    "__version__",
]
