"""Fault injection for exercising the batch service's failure paths.

Real worker pools die in three ways: a worker crashes mid-job, a job
hangs past its budget, and the data it reads is corrupt.  Each has a
deterministic injection hook here so tests and CI can force the path
instead of waiting for it:

``kill_worker``
    ``{"attempts": [1, 2]}`` — the worker calls :func:`os._exit` at the
    start of the listed attempts (1-based).  ``os._exit`` bypasses
    ``finally`` blocks and result reporting, exactly like a SIGKILL'd
    process, so the pool sees a silent worker death and must retry.

``slow_solve``
    ``{"seconds": 30}`` — sleep inside the job before the solve phase,
    driving the job over its wall-clock budget so the pool's
    timeout-kill path fires.

``corrupt_chunk``
    Not a job-time fault: :func:`corrupt_chunk` flips one byte inside a
    chosen chunk of a ``.clap`` container on disk (the CI job uses it to
    prove ``corpus verify`` catches bit rot).
"""

import os
import time

from repro.store.container import ClapReader, ContainerError, flip_byte

KILL_EXIT_CODE = 43


def maybe_kill_worker(faults, attempt):
    """Die like a SIGKILL'd worker if this attempt is marked for death."""
    spec = (faults or {}).get("kill_worker")
    if spec and attempt in spec.get("attempts", []):
        os._exit(KILL_EXIT_CODE)


def maybe_slow_solve(faults):
    """Stall before solving so the job blows its wall-clock budget."""
    spec = (faults or {}).get("slow_solve")
    if spec:
        time.sleep(float(spec.get("seconds", 60.0)))


def corrupt_chunk(trace_path, chunk_index=0, mask=0x01):
    """Flip one byte inside chunk ``chunk_index``'s compressed payload.

    Returns the absolute file offset that was flipped.  The flip lands in
    the chunk body (past the header varints), so the chunk's CRC check —
    not a lucky parse error — is what must catch it.
    """
    reader = ClapReader.open(trace_path)
    if not reader.chunks:
        raise ContainerError("%s has no chunks to corrupt" % trace_path)
    chunk = reader.chunks[chunk_index]
    # Last byte before the CRC trailer: always inside the zlib payload.
    offset = chunk.offset + chunk.size - 5
    flip_byte(trace_path, offset, mask=mask)
    return offset
