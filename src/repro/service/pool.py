"""A multiprocess worker pool with per-job timeouts and bounded retry.

Why not ``multiprocessing.Pool``: the stdlib pool cannot kill one hung
job without tearing down the whole pool, and a worker that dies silently
(our ``kill_worker`` fault, or a real segfault) hangs ``map`` forever.
This pool gives every worker its **own task queue**, so the parent always
knows exactly which job a worker holds and can:

* kill and respawn a worker whose job exceeds its wall-clock budget
  (the job is recorded as ``timeout`` — terminal, since the same
  deterministic solve would time out again);
* detect a worker that died mid-job (exit code set, no result) and retry
  the job with exponential backoff up to its ``max_attempts``, after
  which it is recorded as ``crashed``.

Results come back over one shared queue.  The pool never pickles live
pipeline state: tasks are plain dicts and the job executor is a
top-level importable function (or a picklable callable object carrying
read-only state, like the portfolio's job runner).

Pools created with ``channel=True`` additionally give every worker an
IPC side channel (:class:`WorkerChannel`): workers ``publish`` payloads
that the parent relays into every *other* worker's inbox (the portfolio
solver's learned-clause exchange) and ``send`` payloads the parent hands
to the caller's ``on_message`` hook (progress events).  The caller may
react by calling :meth:`WorkerPool.stop_remaining`, which cancels every
unfinished job — pending jobs are marked ``cancelled`` without ever
dispatching, and busy workers are killed within one poll interval.
``WorkerPool.counters`` records respawns, relayed payloads and
cancellations for the run.
"""

import collections
import multiprocessing
import os
import queue
import time


class WorkerChannel:
    """A worker's side of the pool IPC channel.

    ``publish`` fans a payload out to every other worker's inbox (via the
    parent's relay loop); ``send`` delivers a payload to the parent only;
    ``poll`` drains this worker's inbox without blocking.
    """

    def __init__(self, outbox, inbox):
        self._outbox = outbox
        self._inbox = inbox

    def publish(self, payload):
        self._outbox.put(("broadcast", os.getpid(), payload))

    def send(self, payload):
        self._outbox.put(("message", os.getpid(), payload))

    def poll(self):
        payloads = []
        while True:
            try:
                payloads.append(self._inbox.get_nowait())
            except queue.Empty:
                return payloads


def _worker_main(run_job, task_queue, result_queue, outbox=None, inbox=None):
    """Worker loop: take (job_id, spec, attempt), report a result dict.

    Exceptions escaping ``run_job`` are reported as ``"error"`` outcomes
    rather than killing the worker — only ``os._exit`` / signals (real
    crashes and the injected kind) take the silent-death path the parent
    detects via exit codes.
    """
    channel = WorkerChannel(outbox, inbox) if outbox is not None else None
    while True:
        item = task_queue.get()
        if item is None:
            return
        job_id, spec, attempt = item
        try:
            if channel is not None:
                result = run_job(spec, attempt, channel)
            else:
                result = run_job(spec, attempt)
            result_queue.put((job_id, os.getpid(), "ok", result))
        except BaseException as exc:
            result_queue.put(
                (job_id, os.getpid(), "error", "%s: %s" % (type(exc).__name__, exc))
            )


class _Worker:
    """One worker process plus its private task queue."""

    def __init__(self, ctx, run_job, result_queue, outbox=None):
        self.task_queue = ctx.Queue()
        self.inbox = ctx.Queue() if outbox is not None else None
        self.process = ctx.Process(
            target=_worker_main,
            args=(run_job, self.task_queue, result_queue, outbox, self.inbox),
            daemon=True,
        )
        self.process.start()
        # (job_id, deadline) while busy, else None.
        self.job = None

    def dispatch(self, job_id, spec, attempt, deadline):
        self.job = (job_id, deadline)
        self.task_queue.put((job_id, spec, attempt))

    def kill(self):
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)

    def dead(self):
        return self.process.exitcode is not None


class _JobState:
    __slots__ = ("spec", "attempt", "ready_at", "started_at", "first_start")

    def __init__(self, spec):
        self.spec = spec
        self.attempt = 1
        self.ready_at = 0.0
        self.started_at = None
        self.first_start = None


class WorkerPool:
    """Run job dicts through ``run_job`` across ``jobs`` worker processes.

    ``run_job(spec, attempt) -> result dict`` must be a top-level
    function or picklable callable.  Per-job policy is read from the
    spec dict itself: ``timeout`` (seconds), ``max_attempts`` and
    ``backoff`` (exponential base for retry delays).

    With ``channel=True`` the executor is instead called as
    ``run_job(spec, attempt, channel)`` where ``channel`` is a
    :class:`WorkerChannel`; a payload the worker ``publish``es is
    relayed by the parent into every other worker's inbox, and a
    payload it ``send``s is handed to ``run(..., on_message=...)``.
    """

    def __init__(self, run_job, jobs=2, poll_interval=0.05, channel=False):
        if jobs < 1:
            raise ValueError("need at least one worker")
        self.run_job = run_job
        self.jobs = jobs
        self.poll_interval = poll_interval
        self.channel = channel
        self._ctx = multiprocessing.get_context()
        self._stop = False
        self.counters = {"respawns": 0, "relayed": 0, "cancelled": 0}

    def stop_remaining(self):
        """Cancel every job that has not finished yet.

        Pending jobs are recorded as ``cancelled`` without dispatching;
        busy workers are killed (and their jobs recorded ``cancelled``)
        within one poll interval.  Safe to call from ``on_message`` /
        ``on_outcome`` callbacks.
        """
        self._stop = True

    def run(self, specs, on_outcome=None, on_message=None):
        """Execute every spec; returns outcome dicts in spec order.

        Each outcome is the executor's result dict plus the pool's own
        bookkeeping: ``attempts``, ``wall_time`` and — for jobs the pool
        itself terminated — ``status`` of ``timeout``, ``crashed`` or
        ``cancelled``.  ``on_outcome(index, outcome)`` fires as each job
        completes; ``on_message(payload)`` fires for every payload a
        worker ``send``s over the channel.
        """
        self._stop = False
        self.counters = {"respawns": 0, "relayed": 0, "cancelled": 0}
        result_queue = self._ctx.Queue()
        outbox = self._ctx.Queue() if self.channel else None
        workers = [
            _Worker(self._ctx, self.run_job, result_queue, outbox)
            for _ in range(min(self.jobs, max(len(specs), 1)))
        ]
        states = {i: _JobState(spec) for i, spec in enumerate(specs)}
        pending = collections.deque(sorted(states))
        outcomes = {}

        def finish(job_id, outcome):
            state = states[job_id]
            outcome.setdefault("status", "failed")
            outcome["attempts"] = state.attempt
            outcome["wall_time"] = round(
                time.monotonic() - state.first_start, 6
            )
            outcomes[job_id] = outcome
            if on_outcome is not None:
                on_outcome(job_id, outcome)

        def requeue_or_crash(job_id, worker_pid, reason):
            state = states[job_id]
            max_attempts = int(state.spec.get("max_attempts", 3))
            if state.attempt < max_attempts:
                backoff = float(state.spec.get("backoff", 0.25))
                state.ready_at = time.monotonic() + backoff * (
                    2 ** (state.attempt - 1)
                )
                state.attempt += 1
                pending.append(job_id)
            else:
                finish(
                    job_id,
                    {
                        "entry_id": state.spec.get("entry_id", ""),
                        "status": "crashed",
                        "reason": reason,
                        "worker_pid": worker_pid,
                    },
                )

        def drain_channel():
            if outbox is None:
                return
            while True:
                try:
                    kind, pid, payload = outbox.get_nowait()
                except queue.Empty:
                    return
                if kind == "broadcast":
                    for worker in workers:
                        if worker.inbox is None or worker.dead():
                            continue
                        if worker.process.pid == pid:
                            continue
                        worker.inbox.put(payload)
                        self.counters["relayed"] += 1
                elif on_message is not None:
                    on_message(payload)

        try:
            while len(outcomes) < len(specs):
                now = time.monotonic()
                # Dispatch ready jobs to idle, live workers.
                for worker in workers:
                    if not pending or self._stop:
                        break
                    if worker.job is not None or worker.dead():
                        continue
                    job_id = None
                    for _ in range(len(pending)):
                        candidate = pending.popleft()
                        if states[candidate].ready_at <= now:
                            job_id = candidate
                            break
                        pending.append(candidate)
                    if job_id is None:
                        break
                    state = states[job_id]
                    state.started_at = now
                    if state.first_start is None:
                        state.first_start = now
                    deadline = now + float(state.spec.get("timeout", 120.0))
                    worker.dispatch(job_id, state.spec, state.attempt, deadline)

                # Drain results.
                try:
                    job_id, pid, kind, payload = result_queue.get(
                        timeout=self.poll_interval
                    )
                except queue.Empty:
                    pass
                else:
                    for worker in workers:
                        if worker.job is not None and worker.job[0] == job_id:
                            worker.job = None
                            break
                    if job_id not in outcomes:
                        if kind == "ok":
                            finish(job_id, dict(payload))
                        else:
                            requeue_or_crash(
                                job_id, pid, "executor raised: %s" % payload
                            )

                # Relay channel traffic before acting on cancellation so a
                # winner's result can never race its own stop signal.
                drain_channel()

                # Cancellation: drop what never started, kill what did.
                if self._stop:
                    while pending:
                        job_id = pending.popleft()
                        if job_id in outcomes:
                            continue
                        state = states[job_id]
                        if state.first_start is None:
                            state.first_start = time.monotonic()
                        finish(
                            job_id,
                            {
                                "entry_id": state.spec.get("entry_id", ""),
                                "status": "cancelled",
                                "reason": "pool stopped before dispatch",
                            },
                        )
                        self.counters["cancelled"] += 1
                    for worker in workers:
                        if worker.job is None:
                            continue
                        job_id, _ = worker.job
                        pid = worker.process.pid
                        worker.kill()
                        worker.job = None
                        if job_id not in outcomes:
                            finish(
                                job_id,
                                {
                                    "entry_id": states[job_id].spec.get(
                                        "entry_id", ""
                                    ),
                                    "status": "cancelled",
                                    "reason": "pool stopped while running",
                                    "worker_pid": pid,
                                },
                            )
                            self.counters["cancelled"] += 1
                    continue

                # Kill workers whose job blew its budget; respawn.
                now = time.monotonic()
                for i, worker in enumerate(workers):
                    if worker.job is None:
                        continue
                    job_id, deadline = worker.job
                    if now < deadline:
                        continue
                    pid = worker.process.pid
                    worker.kill()
                    workers[i] = _Worker(
                        self._ctx, self.run_job, result_queue, outbox
                    )
                    self.counters["respawns"] += 1
                    state = states[job_id]
                    finish(
                        job_id,
                        {
                            "entry_id": state.spec.get("entry_id", ""),
                            "status": "timeout",
                            "reason": "exceeded %.1fs wall-clock budget"
                            % float(state.spec.get("timeout", 120.0)),
                            "worker_pid": pid,
                        },
                    )

                # Detect workers that died without reporting; respawn + retry.
                for i, worker in enumerate(workers):
                    if worker.job is None or not worker.dead():
                        continue
                    job_id, _ = worker.job
                    pid = worker.process.pid
                    code = worker.process.exitcode
                    workers[i] = _Worker(
                        self._ctx, self.run_job, result_queue, outbox
                    )
                    self.counters["respawns"] += 1
                    if job_id not in outcomes:
                        requeue_or_crash(
                            job_id,
                            pid,
                            "worker pid %s died with exit code %s" % (pid, code),
                        )
        finally:
            for worker in workers:
                if worker.job is None and not worker.dead():
                    worker.task_queue.put(None)
                else:
                    worker.kill()
            for worker in workers:
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():
                    worker.kill()

        return [outcomes[i] for i in range(len(specs))]
