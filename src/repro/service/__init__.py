"""The batch reproduction service.

CLAP's offline phase is embarrassingly parallel: each recorded failure
reproduces independently, so a corpus of traces becomes a batch of jobs.
This package runs them across a multiprocess worker pool with the
failure handling a long-running service needs:

* :mod:`repro.service.jobs` — job specs and terminal results
  (``reproduced`` / ``failed`` / ``timeout`` / ``crashed``);
* :mod:`repro.service.pool` — the worker pool: per-worker task queues,
  per-job wall-clock kills, bounded retry with exponential backoff;
* :mod:`repro.service.batch` — the engine behind ``repro batch``:
  corpus → jobs → JSONL result sink → aggregate stats table;
* :mod:`repro.service.faults` — deterministic fault injection
  (kill-worker, slow-solve, corrupt-chunk) for testing those paths.
"""

from repro.service.batch import (
    JsonlSink,
    aggregate_results,
    format_batch_table,
    run_batch,
    run_repro_job,
)
from repro.service.jobs import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_REPRODUCED,
    STATUS_TIMEOUT,
    JobResult,
    JobSpec,
)
from repro.service.pool import WorkerPool

__all__ = [
    "JsonlSink",
    "aggregate_results",
    "format_batch_table",
    "run_batch",
    "run_repro_job",
    "STATUS_CRASHED",
    "STATUS_FAILED",
    "STATUS_REPRODUCED",
    "STATUS_TIMEOUT",
    "JobResult",
    "JobSpec",
    "WorkerPool",
]
