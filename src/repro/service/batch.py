"""The batch reproduction engine: ``repro batch <corpus> [--jobs N]``.

Runs the offline half of the CLAP pipeline — load trace from disk,
symbolically re-execute, solve, replay — for every entry of a corpus
across a :class:`~repro.service.pool.WorkerPool`.  Each terminal outcome
is appended to a JSONL sink the moment it lands (one flushed line per
job, so a killed batch leaves a usable results prefix — the same
durability story as the trace container), and the run ends with an
aggregate table: reproduced/failed/timeout/crashed counts, per-job solve
times and the summed CDCL counters from
:func:`repro.constraints.stats.merge_sat_stats`.
"""

import json
import os
import time

from repro.constraints.stats import merge_sat_stats
from repro.core.clap import ClapConfig, ClapPipeline
from repro.service import faults as fault_hooks
from repro.service.jobs import (
    STATUS_FAILED,
    STATUS_REPRODUCED,
    JobResult,
    JobSpec,
)
from repro.service.pool import WorkerPool
from repro.store.cache import AnalysisCache, SharedAnalysisCache
from repro.store.corpus import Corpus


def run_repro_job(spec_dict, attempt=1):
    """Execute one job inside a worker process; returns a result dict.

    Every expected failure mode (damaged entry, unsat constraints,
    replay divergence) is folded into a ``failed`` result with a reason —
    only genuine crashes escape to the pool's retry machinery.
    """
    spec = JobSpec.from_dict(spec_dict)
    fault_hooks.maybe_kill_worker(spec.faults, attempt)
    result = JobResult(
        entry_id=spec.entry_id,
        status=STATUS_FAILED,
        solver=spec.solver,
        worker_pid=os.getpid(),
        shard=spec.shard,
        cluster=spec.cluster,
    )
    try:
        corpus = Corpus.open(spec.corpus_root)
        entry = corpus.entry(spec.entry_id)
        result.program = entry.program_name()
        stored = entry.load_execution()
        result.recovered_trace = stored.recovery is not None
        kwargs = entry.config_kwargs(solver=spec.solver)
        if spec.memory_model:
            kwargs["memory_model"] = spec.memory_model
        pipeline = ClapPipeline(stored.program, ClapConfig(**kwargs))
        fault_hooks.maybe_slow_solve(spec.faults)
        cache = None
        if spec.cache_root:
            # The fleet's shared tier: one cache directory serving every
            # shard's workers, with a size budget and LRU eviction.
            cache = SharedAnalysisCache(
                spec.cache_root, max_bytes=spec.cache_max_bytes or None
            )
        elif spec.use_cache:
            cache = AnalysisCache(os.path.join(spec.corpus_root, "cache"))
        report = pipeline.reproduce_offline(stored, cache=cache)
        result.status = (
            STATUS_REPRODUCED if report.reproduced else STATUS_FAILED
        )
        result.reason = report.failure_reason
        result.time_symbolic = round(report.time_symbolic, 6)
        result.time_solve = round(report.time_solve, 6)
        if cache is not None:
            result.cache = dict(report.cache_stats)
            result.cache["state"] = report.cache_state
        result.context_switches = report.context_switches
        result.n_constraints = report.n_constraints
        result.n_variables = report.n_variables
        result.sat_stats = report.solver_detail.get("sat_stats") or {}
        if spec.want_schedule and report.schedule:
            result.schedule = [list(uid) for uid in report.schedule]
    except Exception as exc:
        result.reason = "%s: %s" % (type(exc).__name__, exc)
    return result.to_dict()


class JsonlSink:
    """Crash-safe JSONL result log, flushed and fsynced line by line.

    Follows the ``.clap`` container's tmp → fsync → atomic-rename
    discipline: lines append to ``<path>.partial`` (each one flushed and
    fsynced, so a killed batch leaves a durable results prefix there),
    and ``close()`` fsyncs once more before renaming the partial onto
    ``path`` — the finished results file appears atomically and is never
    observable torn or half-written.
    """

    def __init__(self, path):
        self.path = path
        self.partial_path = path + ".partial"
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(self.partial_path, "a", encoding="utf-8")
        if self._fh.tell() == 0 and os.path.exists(path):
            # Append semantics across runs: fold the previous finished
            # file into the new partial before adding lines.
            with open(path, "r", encoding="utf-8") as prev:
                self._fh.write(prev.read())
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def write(self, record):
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self):
        if self._fh.closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        os.replace(self.partial_path, self.path)

    @staticmethod
    def read(path):
        """Read a results log; falls back to a killed run's ``.partial``.

        A partial file's final line may be torn (the kill landed inside
        a write); it is dropped rather than letting one ragged tail make
        the whole prefix unreadable.
        """
        if not os.path.exists(path) and os.path.exists(path + ".partial"):
            path = path + ".partial"
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line.strip() for line in fh if line.strip()]
        for i, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except ValueError:
                if i == len(lines) - 1:
                    break
                raise
        return records


def run_batch(
    corpus_root,
    entry_ids=None,
    jobs=2,
    solver="smt",
    memory_model=None,
    timeout=120.0,
    max_attempts=3,
    backoff=0.25,
    faults_by_entry=None,
    sink_path=None,
    on_outcome=None,
    use_cache=True,
):
    """Reproduce every corpus entry; returns (results, aggregate).

    ``results`` is a list of :class:`JobResult` in corpus order;
    ``aggregate`` the dict :func:`aggregate_results` builds.
    ``faults_by_entry`` maps entry ids to fault-injection specs.
    ``use_cache=False`` bypasses the corpus analysis cache entirely.
    """
    corpus = Corpus.open(corpus_root)
    if entry_ids is None:
        entry_ids = corpus.entry_ids()
    specs = [
        JobSpec(
            corpus_root=corpus_root,
            entry_id=entry_id,
            solver=solver,
            memory_model=memory_model,
            timeout=timeout,
            max_attempts=max_attempts,
            backoff=backoff,
            use_cache=use_cache,
            faults=(faults_by_entry or {}).get(entry_id, {}),
        )
        for entry_id in entry_ids
    ]
    sink = JsonlSink(sink_path) if sink_path else None
    t0 = time.monotonic()

    def handle(index, outcome):
        if sink is not None:
            sink.write(outcome)
        if on_outcome is not None:
            on_outcome(index, outcome)

    pool = WorkerPool(run_repro_job, jobs=jobs)
    try:
        raw = pool.run([spec.to_dict() for spec in specs], on_outcome=handle)
    finally:
        if sink is not None:
            sink.close()
    results = [JobResult.from_dict(outcome) for outcome in raw]
    aggregate = aggregate_results(results)
    aggregate["batch_wall_time"] = round(time.monotonic() - t0, 6)
    return results, aggregate


def aggregate_results(results):
    """Summarize a batch: status counts, solve times, SAT counters."""
    by_status = {}
    for result in results:
        by_status[result.status] = by_status.get(result.status, 0) + 1
    solve_times = [
        r.time_solve for r in results if r.status == STATUS_REPRODUCED
    ]
    aggregate = {
        "jobs": len(results),
        "by_status": by_status,
        "reproduced": by_status.get(STATUS_REPRODUCED, 0),
        "total_attempts": sum(r.attempts for r in results),
        "total_solve_time": round(sum(solve_times), 6),
        "max_solve_time": round(max(solve_times), 6) if solve_times else 0.0,
        "sat_stats": merge_sat_stats(r.sat_stats for r in results),
        # Counter-wise sum of the per-job cache counters ('state' is a
        # string and drops out of the numeric merge).
        "cache": merge_sat_stats(r.cache for r in results),
        "deduped": sum(1 for r in results if r.deduped),
    }
    # Fleet runs: cache + dedup counters rolled up per shard.
    if any(r.shard >= 0 for r in results):
        by_shard = {}
        for shard in sorted({r.shard for r in results if r.shard >= 0}):
            ours = [r for r in results if r.shard == shard]
            by_shard[str(shard)] = {
                "jobs": len(ours),
                "reproduced": sum(1 for r in ours if r.ok),
                "deduped": sum(1 for r in ours if r.deduped),
                "clusters": len({r.cluster for r in ours if r.cluster}),
                "cache": merge_sat_stats(r.cache for r in ours),
            }
        aggregate["by_shard"] = by_shard
    return aggregate


def format_batch_table(results, aggregate):
    """Render the per-job stats table plus the aggregate footer."""
    header = (
        "entry",
        "program",
        "status",
        "att",
        "cs",
        "t_sym",
        "t_solve",
        "t_wall",
        "reason",
    )
    rows = [header]
    for r in results:
        rows.append(
            (
                r.entry_id,
                r.program,
                r.status + ("*" if r.recovered_trace else ""),
                str(r.attempts),
                str(r.context_switches) if r.context_switches >= 0 else "-",
                "%.2f" % r.time_symbolic,
                "%.2f" % r.time_solve,
                "%.2f" % r.wall_time,
                r.reason[:40],
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    lines.append("")
    lines.append(
        "%d jobs: %s in %.1fs (total solve %.2fs)"
        % (
            aggregate["jobs"],
            ", ".join(
                "%d %s" % (count, status)
                for status, count in sorted(aggregate["by_status"].items())
            ),
            aggregate.get("batch_wall_time", 0.0),
            aggregate["total_solve_time"],
        )
    )
    sat = aggregate.get("sat_stats")
    if sat:
        lines.append(
            "sat: "
            + ", ".join("%s=%d" % (k, v) for k, v in sorted(sat.items()))
        )
    cache = aggregate.get("cache")
    if cache:
        lines.append(
            "cache: hits=%d misses=%d stale=%d evictions=%d "
            "read=%dB written=%dB"
            % (
                cache.get("hits", 0),
                cache.get("misses", 0),
                cache.get("stale", 0),
                cache.get("evictions", 0),
                cache.get("bytes_read", 0),
                cache.get("bytes_written", 0),
            )
        )
    if aggregate.get("deduped"):
        lines.append(
            "dedup: %d of %d jobs served by a cluster representative's solve"
            % (aggregate["deduped"], aggregate["jobs"])
        )
    for shard, row in sorted(
        aggregate.get("by_shard", {}).items(), key=lambda kv: int(kv[0])
    ):
        shard_cache = row.get("cache", {})
        lines.append(
            "shard %s: %d jobs, %d reproduced, %d deduped, %d clusters, "
            "cache hits=%d misses=%d evictions=%d"
            % (
                shard,
                row["jobs"],
                row["reproduced"],
                row["deduped"],
                row["clusters"],
                shard_cache.get("hits", 0),
                shard_cache.get("misses", 0),
                shard_cache.get("evictions", 0),
            )
        )
    if any(r.recovered_trace for r in results):
        lines.append("* reproduced from a crash-recovered trace")
    return "\n".join(lines)
