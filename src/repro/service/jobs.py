"""Job and result records for the batch reproduction service.

A :class:`JobSpec` names one corpus entry plus everything a worker needs
to reproduce it — solver choice, wall-clock budget, retry policy and
fault-injection hooks.  Specs cross the process boundary as plain dicts
(:meth:`JobSpec.to_dict` / :meth:`JobSpec.from_dict`) so the pool never
pickles live pipeline objects.

A :class:`JobResult` is one terminal outcome.  ``status`` is one of:

``reproduced``
    The offline pipeline solved the constraints and the replay hit the
    same failure.
``failed``
    The pipeline ran to completion but did not reproduce (unsat solver,
    replay divergence, unrecoverable trace, …); ``reason`` says why.
``timeout``
    The job exceeded its wall-clock budget and its worker was killed.
    Terminal: re-running the same deterministic solve would time out
    again.
``crashed``
    The worker process died mid-job (real bug or injected fault) and
    every retry was exhausted.
"""

from dataclasses import asdict, dataclass, field

STATUS_REPRODUCED = "reproduced"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"


@dataclass
class JobSpec:
    """One unit of batch work: reproduce one corpus entry."""

    corpus_root: str
    entry_id: str
    solver: str = "smt"
    # None -> use the entry's recorded memory model.
    memory_model: str = None
    timeout: float = 120.0
    max_attempts: int = 3
    # Exponential backoff base: retry n sleeps backoff * 2**(n-1) seconds.
    backoff: float = 0.25
    # Consult the corpus analysis cache (store.cache): hits skip symexec
    # and constraint encoding; misses populate it for the next run.
    use_cache: bool = True
    # Fault injection (see repro.service.faults), e.g.
    # {"kill_worker": {"attempts": [1]}, "slow_solve": {"seconds": 5}}.
    faults: dict = field(default_factory=dict)
    # Fleet context (repro.fleet): which shard the entry lives in and the
    # dedup-cluster signature it solves for; -1/"" outside a fleet.
    shard: int = -1
    cluster: str = ""
    # Non-empty -> use the fleet's shared analysis cache tier at this
    # root (store.cache.SharedAnalysisCache) instead of the per-corpus
    # cache; cache_max_bytes 0 means no eviction budget.
    cache_root: str = ""
    cache_max_bytes: int = 0
    # Ship the solved schedule back in the result (the fleet dispatcher
    # fans it out to every cluster member).
    want_schedule: bool = False

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


@dataclass
class JobResult:
    """The terminal outcome of one job (one line in the JSONL sink)."""

    entry_id: str
    status: str
    program: str = ""
    solver: str = ""
    attempts: int = 1
    reason: str = ""
    # Wall-clock across all attempts, as seen by the pool.
    wall_time: float = 0.0
    # Pipeline phase times from the successful attempt.
    time_symbolic: float = 0.0
    time_solve: float = 0.0
    context_switches: int = -1
    n_constraints: int = 0
    n_variables: int = 0
    recovered_trace: bool = False
    sat_stats: dict = field(default_factory=dict)
    # Analysis-cache outcome: {'state': off|miss|hit, plus the counter
    # dict from CacheStats.as_dict()} when caching was on.
    cache: dict = field(default_factory=dict)
    worker_pid: int = 0
    # Fleet context, echoed from the spec.
    shard: int = -1
    cluster: str = ""
    # True when this outcome was fanned out from a cluster
    # representative's solve instead of solved directly.
    deduped: bool = False
    # The solved schedule as [[thread, index], ...] when the spec asked
    # for it (want_schedule).
    schedule: list = field(default_factory=list)

    @property
    def ok(self):
        return self.status == STATUS_REPRODUCED

    def to_dict(self):
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})
