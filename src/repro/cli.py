"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        Execute a MiniLang program once under a seeded scheduler.
record     Search seeds for a failing run and dump the CLAP path logs.
reproduce  Full pipeline: record, solve, replay; prints the schedule.
analyze    Static analysis: shared variables, races, lock-order cycles,
           and the SR3xx bug patterns (atomicity/order/lost-notify).
explore    Witness search: SR3xx findings drive a goal-directed solve
           over a recorded *passing* run; witnesses are replay-validated
           and optionally stored in a corpus.
disasm     Show the compiled bytecode of every function.
trace      Decode and print a thread-local path log against its program.
bench      Regenerate a table of the paper's evaluation (1, 2 or 3).
litmus     Run the memory-model litmus suite and print observed outcomes.
corpus     Manage a durable trace corpus (add/ls/verify/compact/recover).
batch      Reproduce every corpus entry across a worker pool.
"""

import argparse
import json
import os
import sys

from repro.minilang import compile_source


def _load_program(path):
    with open(path) as fh:
        source = fh.read()
    return compile_source(source, name=path)


def cmd_run(args):
    from repro.runtime.interpreter import run_program

    program = _load_program(args.program)
    result = run_program(
        program,
        args.memory_model,
        seed=args.seed,
        stickiness=args.stickiness,
        flush_prob=args.flush_prob,
    )
    for thread, values in result.output:
        print("[%s] %s" % (thread, " ".join(str(v) for v in values)))
    print("steps=%d threads=%d saps=%d" % (
        result.steps, len(result.thread_names), result.total_saps()))
    if result.bug is not None:
        print("FAILURE:", result.bug)
        return 1
    if result.aborted:
        print("aborted:", result.aborted)
        return 2
    print("ok; final globals:")
    for addr, value in sorted(result.final_globals.items(), key=repr):
        print("  %s = %d" % (".".join(str(a) for a in addr), value))
    return 0


def cmd_record(args):
    from repro.core.clap import ClapConfig, ClapPipeline

    program = _load_program(args.program)
    config = ClapConfig(
        memory_model=args.memory_model,
        seeds=range(args.max_seeds),
        stickiness=args.stickiness,
        flush_prob=args.flush_prob,
        ring_bytes=args.ring_bytes,
        ring_segment_bytes=args.ring_segment_bytes,
    )
    pipeline = ClapPipeline(program, config)
    recorded = pipeline.record()
    print("failure:", recorded.bug)
    print("seed:", recorded.seed)
    logs = recorded.recorder.encoded_logs()
    total = 0
    for thread, data in sorted(logs.items()):
        print("thread %-8s %5d bytes" % (thread, len(data)))
        total += len(data)
    print("total log: %d bytes" % total)
    if recorded.ring:
        print(
            "ring: budget %dB/thread, segment %dB%s"
            % (
                recorded.ring["ring_bytes"],
                recorded.ring["segment_bytes"],
                "  [lossy]" if recorded.lossy else "",
            )
        )
        for thread, info in sorted(recorded.ring["threads"].items()):
            print(
                "  %-8s retained %d/%d tokens (%d/%d bytes), "
                "%d segments evicted, %d flushes"
                % (
                    thread,
                    info["retained_tokens"],
                    info["total_tokens"],
                    info["retained_bytes"],
                    info["total_bytes"],
                    info["segments_evicted"],
                    info["flushes"],
                )
            )
    if args.out:
        payload = {t: data.hex() for t, data in logs.items()}
        with open(args.out, "w") as fh:
            json.dump({"seed": recorded.seed, "logs": payload}, fh, indent=2)
        print("written to", args.out)
    return 0


def _profile_phases(report):
    """(phase, seconds) rows of the per-phase wall-clock breakdown."""
    return [
        ("record", report.time_record),
        ("symexec", report.time_symbolic),
        ("encode", report.time_encode),
        ("solve", report.time_solve),
        ("replay", report.time_replay),
    ]


def _report_payload(report):
    """The machine-readable form of a ClapReport for ``--json``."""
    payload = {
        "program": report.program_name,
        "memory_model": report.memory_model,
        "solver": report.solver,
        "reproduced": report.reproduced,
        "seed": report.seed,
        "bug": str(report.bug) if report.bug else None,
        "failure_reason": report.failure_reason,
        "log_bytes": report.log_bytes,
        "n_saps": report.n_saps,
        "n_constraints": report.n_constraints,
        "n_variables": report.n_variables,
        "n_pruned_choice_vars": report.n_pruned_choice_vars,
        "n_pruned_clauses": report.n_pruned_clauses,
        "context_switches": report.context_switches,
        "profile": dict(
            [(phase, round(seconds, 6)) for phase, seconds in _profile_phases(report)]
            + [("cache", report.cache_state)]
        ),
        "cache_stats": report.cache_stats,
        "schedule": ["%s#%d" % uid for uid in report.schedule],
    }
    if report.recorder_metrics:
        payload["lossy"] = report.lossy
        payload["recorder"] = report.recorder_metrics
        if report.synthesis:
            payload["synthesis"] = report.synthesis
    return payload


def cmd_reproduce(args):
    from repro.core.clap import ClapConfig, ClapPipeline

    program = _load_program(args.program)
    config = ClapConfig(
        memory_model=args.memory_model,
        solver=args.solver,
        seeds=range(args.max_seeds),
        stickiness=args.stickiness,
        flush_prob=args.flush_prob,
        workers=args.workers,
        portfolio_workers=args.portfolio_workers,
        static_prune=args.static_prune,
        symexec_workers=args.symexec_workers,
        ring_bytes=args.ring_bytes,
        ring_segment_bytes=args.ring_segment_bytes,
    )
    report = ClapPipeline(program, config).reproduce()
    if args.json:
        print(json.dumps(_report_payload(report), indent=2, sort_keys=True))
        return 0 if report.reproduced else 1
    print("failure      :", report.bug)
    print("reproduced   :", report.reproduced)
    print("log bytes    :", report.log_bytes)
    print("SAPs         :", report.n_saps)
    print("constraints  :", report.n_constraints)
    print("variables    :", report.n_variables)
    print(
        "pruned       : %d choice vars, %d clauses (hb closure%s)"
        % (
            report.n_pruned_choice_vars,
            report.n_pruned_clauses,
            " + static" if args.static_prune else "",
        )
    )
    print("solve time   : %.2fs (%s)" % (report.time_solve, report.solver))
    if args.profile:
        print("profile:")
        for phase, seconds in _profile_phases(report):
            print("  %-8s %8.3fs" % (phase, seconds))
        print("  cache    %8s" % report.cache_state)
    if report.recorder_metrics:
        metrics = report.recorder_metrics
        print(
            "recorder     : ring %dB/thread, %d segments written, "
            "%d evicted, %d/%d bytes retained, %d flushes%s"
            % (
                metrics.get("ring_bytes") or 0,
                metrics.get("segments_written", 0),
                metrics.get("segments_evicted", 0),
                metrics.get("bytes_retained", 0),
                metrics.get("bytes_total", 0),
                metrics.get("flushes", 0),
                "  [lossy]" if report.lossy else "",
            )
        )
        for thread, synth in sorted(report.synthesis.items()):
            print(
                "  synthesized %-8s %d blocks, %d calls, %d padding "
                "cycles (%d/%d evicted tokens accounted)"
                % (
                    thread,
                    synth["synth_blocks"],
                    synth["synth_calls"],
                    synth["padding_cycles"],
                    synth["accounted_tokens"],
                    synth["evicted_tokens"],
                )
            )
    detail = report.solver_detail
    sat = detail.get("sat_stats")
    if sat:
        print(
            "sat core     : %d solve calls, %d propagations, %d conflicts,"
            " %d restarts, %d learned, %d reuse hits"
            % (
                sat.get("solve_calls", 0),
                sat.get("propagations", 0),
                sat.get("conflicts", 0),
                sat.get("restarts", 0),
                sat.get("learned", 0),
                sat.get("reuse_hits", 0),
            )
        )
    for entry in detail.get("round_stats", []):
        print(
            "  round c=%-2d %s %6.3fs  %5d iterations, %d conflicts,"
            " %d reuse hits"
            % (
                entry.get("bound", -1),
                "hit " if entry.get("found") else ("done" if entry.get("exhausted") else "cut "),
                entry.get("wall", 0.0),
                entry.get("iterations", 0),
                entry.get("conflicts", 0),
                entry.get("reuse_hits", 0),
            )
        )
    portfolio = detail.get("portfolio")
    if portfolio:
        print(
            "portfolio    : winner %s (%s), %d workers / %d tasks, "
            "%d cubes (%d solved)"
            % (
                portfolio.get("winner") or "-",
                portfolio.get("winner_kind") or "-",
                portfolio.get("workers", 0),
                portfolio.get("tasks", 0),
                portfolio.get("cubes", 0),
                portfolio.get("cubes_solved", 0),
            )
        )
        print(
            "  clauses exported %d / imported %d, rungs resolved %d,"
            " cancelled %d, respawns %d"
            % (
                portfolio.get("clauses_exported", 0),
                portfolio.get("clauses_imported", 0),
                portfolio.get("rungs_resolved", 0),
                portfolio.get("cancelled", 0),
                portfolio.get("respawns", 0),
            )
        )
    print("context sw.  :", report.context_switches)
    if report.schedule:
        print("schedule     :")
        print("  " + " -> ".join("%s#%d" % uid for uid in report.schedule))
    if not report.reproduced:
        print("FAILED:", report.failure_reason)
        return 1
    return 0


def cmd_analyze(args):
    from repro.analysis.static_race import analyze_program

    program = _load_program(args.program)
    report = analyze_program(
        program, name=args.program, memory_model=args.memory_model
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.to_text())
    if args.fail_on_race and report.errors():
        return 1
    return 0


def cmd_explore(args):
    from repro.core.explore import ExploreConfig, ExploreDriver

    with open(args.program) as fh:
        source = fh.read()
    config = ExploreConfig(
        memory_model=args.memory_model,
        max_seeds=args.max_seeds,
        stickiness=args.stickiness,
        flush_prob=args.flush_prob,
        max_cs=args.max_cs,
        static_prune=args.static_prune,
        codes=tuple(c for c in (args.codes or "").split(",") if c),
    )
    corpus = None
    if args.corpus:
        from repro.store.corpus import Corpus

        corpus = Corpus.open_or_create(args.corpus)
    driver = ExploreDriver(source, config=config, name=args.program)
    report = driver.run(corpus=corpus)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(
            "targets      : %d (%d witnesses), %d passing runs from %d seeds"
            % (
                len(report.targets),
                report.n_witnesses,
                report.passing_runs,
                report.seeds_scanned,
            )
        )
        for t in report.targets:
            print(
                "%s %-11s %s (%s) — %s"
                % (t.code, t.status, t.var, t.func, t.description)
            )
            if t.found:
                print(
                    "    model=%s seed=%d rung=%d bound=%d attempts=%d"
                    " schedules=%d %.2fs%s"
                    % (
                        t.memory_model,
                        t.seed,
                        t.rung,
                        t.bound,
                        t.attempts,
                        t.schedules_enumerated,
                        t.time_search,
                        (" -> " + t.entry_id) if t.entry_id else "",
                    )
                )
                print("    schedule: " + " -> ".join(t.schedule))
    if args.fail_without_witness and report.n_witnesses < len(report.targets):
        return 1
    if args.fail_on_witness and report.n_witnesses:
        return 1
    return 0


def cmd_disasm(args):
    program = _load_program(args.program)
    for name in sorted(program.functions):
        print(program.functions[name].dump())
        print()
    return 0


def cmd_trace(args):
    import zlib

    from repro.core.clap import ClapConfig, ClapPipeline
    from repro.tracing.decoder import decode_log

    program = _load_program(args.program)
    config = ClapConfig(
        memory_model=args.memory_model,
        seeds=range(args.max_seeds),
        stickiness=args.stickiness,
        flush_prob=args.flush_prob,
        ring_bytes=args.ring_bytes,
        ring_segment_bytes=args.ring_segment_bytes,
    )
    pipeline = ClapPipeline(program, config)
    recorded = pipeline.record() if args.buggy else pipeline.record_once(args.seed)
    if recorded.ring:
        decoded, _ = pipeline._decode_ring(
            recorded, recorded.ring, recorded.lossy
        )
    else:
        decoded = decode_log(recorded.recorder)

    if args.json:
        ring_threads = (recorded.ring or {}).get("threads", {})
        threads = {}
        for thread, tokens in sorted(recorded.recorder.logs.items()):
            raw = recorded.recorder.encoded_logs()[thread]
            comp = zlib.compress(raw, 6)
            threads[thread] = {
                "tokens": [list(token) for token in tokens],
                "n_tokens": len(tokens),
                "encoded_bytes": len(raw),
                "compressed_bytes": len(comp),
                "compression_ratio": round(len(comp) / len(raw), 4)
                if raw
                else 1.0,
            }
            info = ring_threads.get(thread)
            if info is not None:
                threads[thread]["ring"] = {
                    "lossy": info["evicted_tokens"] > 0,
                    "evicted_tokens": info["evicted_tokens"],
                    "evicted_bytes": info["evicted_bytes"],
                    "segments_written": info["segments_written"],
                    "segments_evicted": info["segments_evicted"],
                    "flushes": info["flushes"],
                    "retained_bytes": info["retained_bytes"],
                    "total_bytes": info["total_bytes"],
                    "anchor": info["anchor"].to_json(),
                }
        payload = {
            "program": program.name,
            "seed": recorded.seed,
            "bug": str(recorded.bug) if recorded.bug else None,
            "threads": threads,
        }
        if recorded.ring:
            payload["ring"] = {
                "ring_bytes": recorded.ring["ring_bytes"],
                "segment_bytes": recorded.ring["segment_bytes"],
                "lossy": recorded.lossy,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    def show(node, depth):
        flag = "" if node.complete else "  [stopped at block %s ip %s]" % (
            node.stop_block,
            node.stop_ip,
        )
        if node.synthesized:
            flag += "  [synthesized]"
        elif node.synth_blocks:
            flag += "  [first %d blocks synthesized]" % node.synth_blocks
        if node.anchored:
            flag += "  [anchored]"
        print("%s%s: blocks %s%s" % ("  " * depth, node.func, node.blocks, flag))
        for child in node.calls:
            show(child, depth + 1)

    for thread in sorted(decoded):
        print("thread", thread)
        show(decoded[thread].root, 1)
    return 0


def cmd_bench(args):
    from repro.bench import harness

    if args.table == 1:
        rows = harness.run_table1()
        text = harness.format_table1(rows)
    elif args.table == 2:
        rows = harness.run_table2()
        text = harness.format_table2(rows)
    else:
        rows = harness.run_table3(workers=args.workers)
        text = harness.format_table3(rows)
    print(text)
    if args.out:
        harness.save_result(args.out, text)
    return 0


def cmd_litmus(args):
    from repro.runtime.litmus import LITMUS_TESTS, run_litmus

    for name in sorted(LITMUS_TESTS):
        for model in ("sc", "tso", "pso"):
            result = run_litmus(name, model, seeds=range(args.runs))
            outcomes = ", ".join(str(o) for o in sorted(result.outcomes))
            print("%-5s %-4s -> %s" % (name, model, outcomes))
    return 0


def cmd_corpus_add(args):
    from repro.core.clap import ClapConfig
    from repro.store import Corpus

    with open(args.program) as fh:
        source = fh.read()
    name = args.name or args.program.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    config = ClapConfig(
        memory_model=args.memory_model,
        seeds=range(args.max_seeds),
        stickiness=args.stickiness,
        flush_prob=args.flush_prob,
        ring_bytes=args.ring_bytes,
        ring_segment_bytes=args.ring_segment_bytes,
    )
    corpus = Corpus.open_or_create(args.corpus)
    entry = corpus.add(
        source, name=name, config=config, flush_every=args.flush_every
    )
    stats = entry.manifest["stats"]
    print("added %s" % entry.entry_id)
    print(
        "  seed=%d threads=%d saps=%d log=%dB trace=%dB"
        % (
            entry.manifest["record"]["seed"],
            len(stats["thread_names"]),
            stats["n_saps"],
            stats["log_bytes"],
            os.path.getsize(entry.trace_path),
        )
    )
    ring = entry.manifest.get("ring")
    if ring:
        print(
            "  ring: %dB/thread budget%s"
            % (
                ring.get("ring_bytes") or 0,
                "  [lossy: prefix evicted, reproduction will synthesize]"
                if ring.get("lossy")
                else "",
            )
        )
    return 0


def _entry_row(entry, shard=None):
    """One machine-readable listing row for ``corpus ls --json``."""
    manifest = entry.manifest
    stats = manifest.get("stats", {})
    fleet_info = manifest.get("fleet") or {}
    row = {
        "entry_id": entry.entry_id,
        "program": manifest["program"]["name"],
        "sha256": manifest["program"]["sha256"],
        "memory_model": manifest["record"].get("memory_model", "sc"),
        "seed": manifest["record"].get("seed", -1),
        "threads": len(stats.get("thread_names", [])),
        "saps": stats.get("n_saps", 0),
        "log_bytes": stats.get("log_bytes", 0),
        "bug": dict(manifest.get("bug", {})),
        "recovered": bool(manifest.get("recovered")),
        "ring": bool(manifest.get("ring")),
        "lossy": bool((manifest.get("ring") or {}).get("lossy")),
        "provenance": manifest.get("provenance") or {},
        "shard": fleet_info.get("shard", shard if shard is not None else -1),
        "cluster": fleet_info.get("cluster", ""),
        "fingerprint": fleet_info.get("fingerprint", ""),
    }
    return row


def cmd_corpus_ls(args):
    from repro.store import Corpus

    corpus = Corpus.open(args.corpus)
    entries = corpus.entries()
    if getattr(args, "json", False):
        print(json.dumps([_entry_row(e) for e in entries], indent=2))
        return 0
    if not entries:
        print("(empty corpus)")
        return 0
    for entry in entries:
        manifest = entry.manifest
        stats = manifest.get("stats", {})
        provenance = manifest.get("provenance") or {}
        origin = ""
        if provenance.get("mode") == "explore":
            origin = "  [explore %s]" % provenance.get("code", "?")
        print(
            "%-28s %-10s %-4s seed=%-4d threads=%d saps=%-4d %s%s%s"
            % (
                entry.entry_id,
                manifest["program"]["name"],
                manifest["record"].get("memory_model", "sc"),
                manifest["record"]["seed"],
                len(stats.get("thread_names", [])),
                stats.get("n_saps", 0),
                manifest.get("bug", {}).get("message", ""),
                origin,
                "  [recovered]" if manifest.get("recovered") else "",
            )
            + (
                "  [ring lossy]"
                if (manifest.get("ring") or {}).get("lossy")
                else ("  [ring]" if manifest.get("ring") else "")
            )
        )
    return 0


def cmd_corpus_verify(args):
    from repro.store import AnalysisCache, Corpus

    corpus = Corpus.open(args.corpus)
    entry_ids = args.entries or corpus.entry_ids()
    bad = 0
    for entry_id in entry_ids:
        ok, problems = corpus.entry(entry_id).verify()
        if ok:
            print("%-28s ok" % entry_id)
        else:
            bad += 1
            print("%-28s CORRUPT" % entry_id)
            for problem in problems:
                print("    %s" % problem)
    # Analysis cache: stale entries (old schema, mismatched prune config,
    # unreadable pickle) are reported and removed — self-healing, so they
    # do not fail the verify.
    cache_root = os.path.join(args.corpus, "cache")
    if os.path.isdir(cache_root):
        cache = AnalysisCache(cache_root)
        total = len(cache.entry_paths())
        stale = cache.verify()
        for path, problem in stale:
            print(
                "cache %-22s STALE (removed): %s"
                % (os.path.basename(path)[:12] + "…", problem)
            )
        print("cache: %d entries ok, %d stale removed" % (total - len(stale), len(stale)))
    return 1 if bad else 0


def cmd_corpus_compact(args):
    from repro.store import Corpus

    corpus = Corpus.open(args.corpus)
    entry_ids = args.entries or corpus.entry_ids()
    for entry_id in entry_ids:
        old, new = corpus.entry(entry_id).compact()
        print("%-28s %d -> %d bytes" % (entry_id, old, new))
    return 0


def cmd_corpus_recover(args):
    from repro.store import Corpus

    corpus = Corpus.open(args.corpus)
    report = corpus.entry(args.entry).recover()
    print(report.summary())
    for note in report.notes:
        print("  note:", note)
    return 0 if report.validated else 1


def cmd_batch(args):
    from repro.service import format_batch_table, run_batch

    def progress(_index, outcome):
        print(
            "  %-28s %s" % (outcome.get("entry_id", "?"), outcome.get("status")),
            file=sys.stderr,
        )

    results, aggregate = run_batch(
        args.corpus,
        entry_ids=args.entries or None,
        jobs=args.jobs,
        solver=args.solver,
        timeout=args.timeout,
        max_attempts=args.max_attempts,
        sink_path=args.out,
        on_outcome=progress if not args.quiet else None,
        use_cache=not args.no_cache,
    )
    print(format_batch_table(results, aggregate))
    return 0 if aggregate["reproduced"] == aggregate["jobs"] else 1


def _open_fleet(args):
    from repro.fleet import ShardedCorpus

    return ShardedCorpus.open(args.fleet)


def cmd_fleet_init(args):
    from repro.fleet import ShardedCorpus

    fleet = ShardedCorpus.create(
        args.fleet, shards=args.shards, cache_max_bytes=args.cache_max_bytes
    )
    print(
        "initialized fleet %s: %d shards, cache budget %dB"
        % (args.fleet, fleet.n_shards, fleet.config["cache_max_bytes"])
    )
    return 0


def cmd_fleet_add(args):
    from repro.core.clap import ClapConfig

    fleet = _open_fleet(args)
    with open(args.program) as fh:
        source = fh.read()
    name = args.name or args.program.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    config = ClapConfig(
        memory_model=args.memory_model,
        seeds=range(args.max_seeds),
        stickiness=args.stickiness,
        flush_prob=args.flush_prob,
    )
    outcome = fleet.add(source, name=name, config=config)
    print(
        "%s shard=%d entry=%s cluster=%s"
        % (
            outcome["status"],
            outcome["shard"],
            outcome["entry_id"],
            outcome["cluster"][:12],
        )
    )
    return 0


def cmd_fleet_ls(args):
    fleet = _open_fleet(args)
    rows = [
        _entry_row(entry, shard=shard) for shard, entry in fleet.entries()
    ]
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    if not rows:
        print("(empty fleet)")
        return 0
    for row in rows:
        print(
            "s%02d %-32s %-10s %-4s cluster=%s %s"
            % (
                row["shard"],
                row["entry_id"],
                row["program"],
                row["memory_model"],
                row["cluster"][:12] or "-",
                row["bug"].get("message", ""),
            )
        )
    return 0


def cmd_fleet_stats(args):
    fleet = _open_fleet(args)
    stats = fleet.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    for shard in stats["shards"]:
        print(
            "shard %02d: %d entries, %d clusters, %d programs, %dB traces"
            % (
                shard["shard"],
                shard["entries"],
                shard["clusters"],
                shard["programs"],
                shard["trace_bytes"],
            )
        )
    clusters = stats["clusters"]
    print(
        "clusters: %d (%d members, %d solves avoided, %d solved, "
        "%d pending, %d failed)"
        % (
            clusters["clusters"],
            clusters["members"],
            clusters["solves_avoided"],
            clusters["solved"],
            clusters["pending"],
            clusters["failed"],
        )
    )
    print("queue: %s" % ", ".join(
        "%d %s" % (count, state)
        for state, count in sorted(stats["queue"].items())
    ))
    cache = stats["cache"]
    budget = cache.get("max_bytes")
    print(
        "shared cache: %d entries, %dB%s"
        % (
            cache["entries"],
            cache["bytes"],
            " of %dB budget" % budget if budget else "",
        )
    )
    return 0


def cmd_fleet_rebalance(args):
    fleet = _open_fleet(args)
    summary = fleet.rebalance(shards=args.shards)
    print(
        "rebalanced to %d shards: %d of %d entries moved"
        % (summary["shards"], summary["moved"], summary["entries"])
    )
    return 0


def cmd_fleet_export(args):
    from repro.fleet import report_from_entry

    fleet = _open_fleet(args)
    for shard, entry in fleet.entries():
        if entry.entry_id == args.entry:
            report = report_from_entry(entry)
            text = json.dumps(report, indent=2, sort_keys=True)
            if args.out:
                with open(args.out, "w") as fh:
                    fh.write(text + "\n")
            else:
                print(text)
            return 0
    print("no fleet entry %s" % args.entry, file=sys.stderr)
    return 1


def cmd_fleet_ingest(args):
    from repro.fleet import IngestGateway, request

    reports = []
    for path in args.reports:
        with open(path) as fh:
            reports.append((path, json.load(fh)))
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        address = (host or "127.0.0.1", int(port))
        outcomes = [
            request(address, {"op": "ingest", "report": report})
            for _path, report in reports
        ]
    else:
        gateway = IngestGateway(
            _open_fleet(args), max_queue_depth=args.max_queue_depth
        )
        outcomes = [gateway.ingest(report) for _path, report in reports]
    bad = 0
    for (path, _report), outcome in zip(reports, outcomes):
        status = outcome.get("status", "?")
        if status in ("invalid", "rejected"):
            bad += 1
            print("%s: %s (%s)" % (path, status, outcome.get("reason", "")))
        else:
            print(
                "%s: %s shard=%s cluster=%s"
                % (
                    path,
                    status,
                    outcome.get("shard"),
                    (outcome.get("cluster") or "")[:12],
                )
            )
    return 1 if bad else 0


def cmd_fleet_serve(args):
    import asyncio

    from repro.fleet import FleetDispatcher, IngestGateway
    from repro.service import format_batch_table

    fleet = _open_fleet(args)
    dispatcher = FleetDispatcher(
        fleet,
        jobs=args.jobs,
        per_shard_limit=args.per_shard,
        solver=args.solver,
        timeout=args.timeout,
    )
    gateway = IngestGateway(
        fleet, max_queue_depth=args.max_queue_depth, dispatcher=dispatcher
    )

    class _Ready:
        def set(self):
            print(
                "listening on %s:%d" % gateway.address, file=sys.stderr
            )

    results, aggregate = asyncio.run(
        gateway.serve(host=args.host, port=args.port, ready=_Ready())
    ) or (None, None)
    if results is not None:
        print(format_batch_table(results, aggregate))
    return 0


def cmd_fleet_drain(args):
    from repro.fleet import FleetDispatcher
    from repro.service import format_batch_table

    fleet = _open_fleet(args)
    dispatcher = FleetDispatcher(
        fleet,
        jobs=args.jobs,
        per_shard_limit=args.per_shard,
        solver=args.solver,
        timeout=args.timeout,
    )
    results, aggregate = dispatcher.drain()
    print(format_batch_table(results, aggregate))
    if args.out:
        from repro.service import JsonlSink

        sink = JsonlSink(args.out)
        try:
            for result in results:
                sink.write(result.to_dict())
        finally:
            sink.close()
    failed = aggregate["jobs"] - aggregate["reproduced"]
    return 1 if failed else 0


def _common_run_flags(sub):
    sub.add_argument("program", help="MiniLang source file")
    sub.add_argument("--memory-model", default="sc", choices=["sc", "tso", "pso"])
    sub.add_argument("--stickiness", type=float, default=0.5)
    sub.add_argument("--flush-prob", type=float, default=0.25)


def _ring_flags(sub):
    sub.add_argument(
        "--ring-bytes",
        type=int,
        default=None,
        help="flight-recorder mode: bound each thread's retained log to "
        "this many encoded bytes (oldest segments are evicted; the "
        "suffix stays reproducible via prefix synthesis)",
    )
    sub.add_argument(
        "--ring-segment-bytes",
        type=int,
        default=512,
        help="ring segment size (eviction granularity; default 512)",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CLAP concurrency-failure reproduction (PLDI 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="execute a program once")
    _common_run_flags(p)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("record", help="record a failing run's path logs")
    _common_run_flags(p)
    _ring_flags(p)
    p.add_argument("--max-seeds", type=int, default=500)
    p.add_argument("--out", help="write logs as JSON")
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("reproduce", help="record, solve and replay a failure")
    _common_run_flags(p)
    _ring_flags(p)
    p.add_argument(
        "--solver",
        default="smt",
        choices=["smt", "smt-inc", "smt-portfolio", "genval"],
    )
    p.add_argument("--max-seeds", type=int, default=500)
    p.add_argument("--workers", type=int, default=0)
    p.add_argument(
        "--portfolio-workers",
        type=int,
        default=3,
        help="worker processes for --solver smt-portfolio "
        "(<= 1 falls back to the sequential incremental loop)",
    )
    p.add_argument(
        "--static-prune",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="prune Frw with the static race analysis (on by default; "
        "--no-static-prune disables it)",
    )
    p.add_argument(
        "--symexec-workers",
        type=int,
        default=0,
        help="fan per-thread symbolic execution over N worker processes",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="per-phase wall-clock breakdown (record/symexec/encode/solve/replay)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report (includes the profile breakdown)",
    )
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser(
        "analyze", help="static race/deadlock/robustness analysis of a program"
    )
    p.add_argument("program", help="MiniLang source file")
    p.add_argument(
        "--memory-model",
        default="sc",
        choices=["sc", "tso", "pso"],
        help="target model for the SR4xx robustness pass (sc: skip it)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--fail-on-race",
        action="store_true",
        help="exit 1 when any error-severity diagnostic is reported",
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "explore",
        help="search for witnesses of static SR3xx/SR4xx findings (no "
        "failing recording needed)",
    )
    _common_run_flags(p)
    p.add_argument(
        "--codes",
        help="comma-separated predicate codes to search (e.g. SR401,SR402)",
    )
    p.add_argument(
        "--max-seeds",
        type=int,
        default=64,
        help="seeds scanned for passing runs covering the predicate sites",
    )
    p.add_argument("--max-cs", type=int, default=6, help="context-switch bound")
    p.add_argument(
        "--corpus", help="store replay-validated witnesses in this corpus"
    )
    p.add_argument(
        "--static-prune",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="prune Frw with the static race analysis (on by default)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--fail-without-witness",
        action="store_true",
        help="exit 1 unless every SR3xx finding yields a validated witness",
    )
    p.add_argument(
        "--fail-on-witness",
        action="store_true",
        help="exit 1 when any validated witness is found (fixed-variant gate)",
    )
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("disasm", help="dump compiled bytecode")
    p.add_argument("program")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("trace", help="decode a recorded path log")
    _common_run_flags(p)
    _ring_flags(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--buggy", action="store_true", help="search for a failing run")
    p.add_argument("--max-seeds", type=int, default=500)
    p.add_argument(
        "--json",
        action="store_true",
        help="raw tokens plus per-thread byte/compression stats as JSON",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("corpus", help="manage a durable trace corpus")
    csub = p.add_subparsers(dest="corpus_command", required=True)

    c = csub.add_parser("add", help="record a failure and store its trace")
    c.add_argument("corpus", help="corpus directory (created if missing)")
    _common_run_flags(c)
    _ring_flags(c)
    c.add_argument("--name", help="program name (default: file stem)")
    c.add_argument("--max-seeds", type=int, default=500)
    c.add_argument(
        "--flush-every",
        type=int,
        default=16,
        help="streaming chunk granularity in tokens",
    )
    c.set_defaults(func=cmd_corpus_add)

    c = csub.add_parser("ls", help="list corpus entries")
    c.add_argument("corpus")
    c.add_argument(
        "--json",
        action="store_true",
        help="machine-readable rows (incl. fleet shard/cluster columns)",
    )
    c.set_defaults(func=cmd_corpus_ls)

    c = csub.add_parser(
        "verify", help="CRC/footer/hash-check entries (exit 1 on corruption)"
    )
    c.add_argument("corpus")
    c.add_argument("entries", nargs="*", help="entry ids (default: all)")
    c.set_defaults(func=cmd_corpus_verify)

    c = csub.add_parser(
        "compact", help="merge streaming chunks for minimum size"
    )
    c.add_argument("corpus")
    c.add_argument("entries", nargs="*", help="entry ids (default: all)")
    c.set_defaults(func=cmd_corpus_compact)

    c = csub.add_parser(
        "recover", help="rebuild a truncated trace from its chunk prefix"
    )
    c.add_argument("corpus")
    c.add_argument("entry")
    c.set_defaults(func=cmd_corpus_recover)

    p = sub.add_parser(
        "batch", help="reproduce every corpus entry across a worker pool"
    )
    p.add_argument("corpus")
    p.add_argument("--entries", nargs="*", help="entry ids (default: all)")
    p.add_argument("--jobs", type=int, default=2)
    p.add_argument(
        "--solver",
        default="smt",
        choices=["smt", "smt-inc", "smt-portfolio", "genval"],
    )
    p.add_argument("--timeout", type=float, default=120.0)
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument("--out", help="append JSONL results to this file")
    p.add_argument("--quiet", action="store_true", help="no per-job progress")
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the corpus analysis cache (always re-run symexec+encode)",
    )
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "fleet", help="manage a sharded reproduction fleet (repro.fleet)"
    )
    fsub = p.add_subparsers(dest="fleet_command", required=True)

    f = fsub.add_parser("init", help="create a fleet root")
    f.add_argument("fleet", help="fleet directory")
    f.add_argument("--shards", type=int, default=4)
    f.add_argument(
        "--cache-max-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="shared analysis cache size budget (LRU-evicted)",
    )
    f.set_defaults(func=cmd_fleet_init)

    f = fsub.add_parser(
        "add", help="record a failure locally and store it in its shard"
    )
    f.add_argument("fleet")
    _common_run_flags(f)
    f.add_argument("--name", help="program name (default: file stem)")
    f.add_argument("--max-seeds", type=int, default=500)
    f.set_defaults(func=cmd_fleet_add)

    f = fsub.add_parser("ls", help="list every entry across all shards")
    f.add_argument("fleet")
    f.add_argument("--json", action="store_true")
    f.set_defaults(func=cmd_fleet_ls)

    f = fsub.add_parser(
        "stats", help="per-shard, cluster, queue and cache counters"
    )
    f.add_argument("fleet")
    f.add_argument("--json", action="store_true")
    f.set_defaults(func=cmd_fleet_stats)

    f = fsub.add_parser(
        "rebalance", help="re-route every entry (e.g. after --shards change)"
    )
    f.add_argument("fleet")
    f.add_argument("--shards", type=int, help="new shard count")
    f.set_defaults(func=cmd_fleet_rebalance)

    f = fsub.add_parser(
        "export", help="write one entry as a wire-format crash report"
    )
    f.add_argument("fleet")
    f.add_argument("entry")
    f.add_argument("--out", help="report file (default: stdout)")
    f.set_defaults(func=cmd_fleet_export)

    f = fsub.add_parser(
        "ingest", help="feed crash-report JSON files into the fleet"
    )
    f.add_argument("fleet")
    f.add_argument("reports", nargs="+", help="report JSON files")
    f.add_argument(
        "--connect",
        help="send to a running gateway at HOST:PORT instead of ingesting "
        "in-process",
    )
    f.add_argument("--max-queue-depth", type=int, default=256)
    f.set_defaults(func=cmd_fleet_ingest)

    f = fsub.add_parser(
        "serve", help="run the async ingestion gateway (drains on shutdown)"
    )
    f.add_argument("fleet")
    f.add_argument("--host", default="127.0.0.1")
    f.add_argument("--port", type=int, default=0)
    f.add_argument("--max-queue-depth", type=int, default=256)
    f.add_argument("--jobs", type=int, default=2)
    f.add_argument("--per-shard", type=int, default=2)
    f.add_argument(
        "--solver",
        default="smt",
        choices=["smt", "smt-inc", "smt-portfolio", "genval"],
    )
    f.add_argument("--timeout", type=float, default=120.0)
    f.set_defaults(func=cmd_fleet_serve)

    f = fsub.add_parser(
        "drain", help="solve every queued cluster and fan schedules out"
    )
    f.add_argument("fleet")
    f.add_argument("--jobs", type=int, default=2)
    f.add_argument("--per-shard", type=int, default=2)
    f.add_argument(
        "--solver",
        default="smt",
        choices=["smt", "smt-inc", "smt-portfolio", "genval"],
    )
    f.add_argument("--timeout", type=float, default=120.0)
    f.add_argument("--out", help="write JSONL results to this file")
    f.set_defaults(func=cmd_fleet_drain)

    p = sub.add_parser("bench", help="regenerate a paper table")
    p.add_argument("table", type=int, choices=[1, 2, 3])
    p.add_argument("--workers", type=int, default=0)
    p.add_argument("--out", help="filename under results/")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("litmus", help="run the memory-model litmus suite")
    p.add_argument("--runs", type=int, default=300)
    p.set_defaults(func=cmd_litmus)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
