"""Memory subsystem with SC, TSO and PSO semantics.

The paper evaluates CLAP under sequential consistency and the SPARC relaxed
models TSO and PSO, and triggers the relaxed-memory bugs (dekker, peterson,
bakery) by "simulating a FIFO store buffer for each thread" (TSO) or "one
per shared variable" (PSO).  This module makes those store buffers
first-class:

* :class:`SCMemory` — stores apply to global memory immediately.
* :class:`TSOMemory` — one FIFO store buffer per thread; a store enters the
  buffer when executed and becomes globally visible when *flushed* (the
  scheduler chooses flush points).  Loads snoop their own buffer first
  (store-to-load forwarding), so a thread always sees its own most recent
  store.
* :class:`PSOMemory` — one FIFO buffer per (thread, address); stores to
  different addresses may drain in either order, which is exactly the
  reordering that breaks Figure 2's ``assert2``.

Only *shared* data addresses go through buffers; thread-local globals are
invisible to other threads, so buffering them would only add schedule noise.

Synchronization operations act as full fences (as pthread lock/unlock do on
real hardware): the interpreter calls :meth:`fence` before a sync SAP,
draining that thread's buffers.

Buffered stores carry the SAP identity of the store instruction so the
deterministic replayer can flush a *specific* pending write when the
computed schedule says its memory-order turn has come.
"""

from collections import deque
from dataclasses import dataclass

SC = "sc"
TSO = "tso"
PSO = "pso"

MEMORY_MODELS = (SC, TSO, PSO)


@dataclass
class PendingStore:
    """A store sitting in a store buffer, awaiting its flush."""

    thread: int
    addr: tuple
    value: int
    sap: object = None  # the write SAP (commits to memory order at flush)

    @property
    def sap_uid(self):
        return self.sap.uid if self.sap is not None else None

    def __repr__(self):
        return "PendingStore(%r=%r by t%d, sap=%r)" % (
            self.addr,
            self.value,
            self.thread,
            self.sap_uid,
        )


class _BaseMemory:
    """Global memory shared by all models: a flat addr -> int map."""

    model = None

    def __init__(self, symbols, shared_addrs=None):
        self.cells = {}
        self.array_sizes = {}
        for info in symbols.globals.values():
            if not info.is_data:
                continue
            if info.is_array:
                self.array_sizes[info.name] = info.size
                for i in range(info.size):
                    self.cells[(info.name, i)] = 0
            else:
                self.cells[(info.name,)] = info.init
        # shared_addrs: predicate deciding whether an address is shared data
        # (then subject to buffering).  None means "everything is shared".
        self._shared = shared_addrs

    def is_shared(self, addr):
        return self._shared is None or self._shared(addr)

    def check_addr(self, addr):
        if addr not in self.cells:
            if len(addr) == 2:
                size = self.array_sizes.get(addr[0])
                raise IndexError(
                    "array index out of bounds: %s[%r] (size %r)"
                    % (addr[0], addr[1], size)
                )
            raise KeyError("no such memory cell: %r" % (addr,))

    def global_value(self, addr):
        """The value in global memory, ignoring store buffers."""
        self.check_addr(addr)
        return self.cells[addr]

    def snapshot(self):
        """Copy of global memory (used for final-state checks in tests)."""
        return dict(self.cells)

    # -- interface refined by subclasses ----------------------------------

    def read(self, tid, addr):
        self.check_addr(addr)
        return self.cells[addr]

    def write(self, tid, addr, value, sap=None):
        self.check_addr(addr)
        self.cells[addr] = value

    def flush_choices(self):
        """Pending flush actions the scheduler may take: list of PendingStore
        at the head of some FIFO buffer (only those are flushable)."""
        return []

    def flush(self, pending):
        raise NotImplementedError("no store buffers in this model")

    def fence(self, tid):
        """Drain all of ``tid``'s buffered stores (sync ops are full fences)."""

    def drain_all(self):
        """Flush every buffer in a legal order (used at execution end)."""

    def pending_count(self, tid=None):
        return 0

    def pending_stores(self, tid=None):
        return []


class SCMemory(_BaseMemory):
    """Sequential consistency: program order == memory order."""

    model = SC


class TSOMemory(_BaseMemory):
    """Total store order: one FIFO store buffer per thread."""

    model = TSO

    def __init__(self, symbols, shared_addrs=None):
        super().__init__(symbols, shared_addrs)
        self.buffers = {}  # tid -> deque[PendingStore]

    def read(self, tid, addr):
        self.check_addr(addr)
        buffer = self.buffers.get(tid)
        if buffer:
            for pending in reversed(buffer):
                if pending.addr == addr:
                    return pending.value
        return self.cells[addr]

    def write(self, tid, addr, value, sap=None):
        self.check_addr(addr)
        if not self.is_shared(addr):
            self.cells[addr] = value
            return
        self.buffers.setdefault(tid, deque()).append(
            PendingStore(tid, addr, value, sap)
        )

    def flush_choices(self):
        return [buffer[0] for buffer in self.buffers.values() if buffer]

    def flush(self, pending):
        buffer = self.buffers[pending.thread]
        if not buffer or buffer[0] is not pending:
            raise ValueError("can only flush the head of a TSO store buffer")
        buffer.popleft()
        self.cells[pending.addr] = pending.value

    def fence(self, tid):
        buffer = self.buffers.get(tid)
        while buffer:
            self.flush(buffer[0])

    def drain_all(self):
        for tid in list(self.buffers):
            self.fence(tid)

    def pending_count(self, tid=None):
        if tid is not None:
            return len(self.buffers.get(tid, ()))
        return sum(len(b) for b in self.buffers.values())

    def pending_stores(self, tid=None):
        if tid is not None:
            return list(self.buffers.get(tid, ()))
        return [p for b in self.buffers.values() for p in b]


class PSOMemory(_BaseMemory):
    """Partial store order: one FIFO store buffer per (thread, address).

    Stores by one thread to *different* addresses may become visible in
    either order; same-address stores stay FIFO.
    """

    model = PSO

    def __init__(self, symbols, shared_addrs=None):
        super().__init__(symbols, shared_addrs)
        self.buffers = {}  # (tid, addr) -> deque[PendingStore]

    def read(self, tid, addr):
        self.check_addr(addr)
        buffer = self.buffers.get((tid, addr))
        if buffer:
            return buffer[-1].value
        return self.cells[addr]

    def write(self, tid, addr, value, sap=None):
        self.check_addr(addr)
        if not self.is_shared(addr):
            self.cells[addr] = value
            return
        self.buffers.setdefault((tid, addr), deque()).append(
            PendingStore(tid, addr, value, sap)
        )

    def flush_choices(self):
        return [buffer[0] for buffer in self.buffers.values() if buffer]

    def flush(self, pending):
        buffer = self.buffers[(pending.thread, pending.addr)]
        if not buffer or buffer[0] is not pending:
            raise ValueError("can only flush the head of a PSO store buffer")
        buffer.popleft()
        self.cells[pending.addr] = pending.value

    def fence(self, tid):
        for (buf_tid, _), buffer in self.buffers.items():
            if buf_tid == tid:
                while buffer:
                    self.flush(buffer[0])

    def drain_all(self):
        for buffer in self.buffers.values():
            while buffer:
                self.flush(buffer[0])

    def pending_count(self, tid=None):
        total = 0
        for (buf_tid, _), buffer in self.buffers.items():
            if tid is None or buf_tid == tid:
                total += len(buffer)
        return total

    def pending_stores(self, tid=None):
        result = []
        for (buf_tid, _), buffer in self.buffers.items():
            if tid is None or buf_tid == tid:
                result.extend(buffer)
        return result


_MODEL_CLASSES = {SC: SCMemory, TSO: TSOMemory, PSO: PSOMemory}


def make_memory(model, symbols, shared_addrs=None):
    """Instantiate the memory subsystem for ``model`` ('sc'/'tso'/'pso')."""
    try:
        cls = _MODEL_CLASSES[model]
    except KeyError:
        raise ValueError(
            "unknown memory model %r (expected one of %s)" % (model, MEMORY_MODELS)
        ) from None
    return cls(symbols, shared_addrs)
