"""Deterministic schedule replay.

This is CLAP's phase 3: given the SAP ordering computed by the solver, drive
the interpreter so the SAPs hit memory in exactly that order, and check that
the same failure occurs.  The enforcement discipline follows the paper's
Tinertia-based scheduler: before each SAP, a thread is only allowed to
proceed if it is its turn; otherwise it is postponed.

Under TSO/PSO the memory-order event of a *write* SAP is its store-buffer
flush, not its execution, so the replayer distinguishes the two: when the
schedule's next entry is a write that is already sitting in a buffer, the
replayer flushes that specific pending store; when it is not yet buffered,
the replayer steps the owning thread (stores execute into the buffer along
the way) until the event commits.  This is how a schedule that reorders one
thread's writes (the PSO witness of Figure 2) is physically realized.
"""

from dataclasses import dataclass

from repro.runtime.interpreter import Interpreter
from repro.runtime.thread_state import RUNNABLE


class ReplayError(Exception):
    """The schedule could not be enforced (invalid or infeasible)."""


@dataclass
class ReplayOutcome:
    """Result of one replay attempt."""

    result: object  # ExecutionResult
    reproduced: bool  # expected bug observed?
    consumed: int  # schedule entries enforced

    @property
    def bug(self):
        return self.result.bug


# Cap on interpreter steps between two consecutive SAP commits; a valid
# schedule only needs straight-line steps in between, so a generous constant
# suffices to call a replay wedged.
_MAX_STEPS_BETWEEN_SAPS = 200_000


def replay_schedule(
    program,
    schedule,
    memory_model="sc",
    shared=None,
    expected_bug=None,
    hooks=(),
    checkpoint=None,
):
    """Replay ``schedule`` (a list of SAP uids) and return a ReplayOutcome.

    ``expected_bug`` is the BugReport from the original run; ``reproduced``
    is True when a failure with the same site occurs (or, if no expectation
    is given, when any failure occurs).
    """
    position = [0]  # shared with the wake policy below

    def wake_policy(interp, cv, waiter_tids):
        # Wake the waiter whose next scheduled SAP comes first: a blocked
        # waiter's next SAP is exactly its wait SAP on this condvar.
        names = {interp.threads[tid].name: tid for tid in waiter_tids}
        for entry in schedule[position[0]:]:
            tid = names.get(entry[0])
            if tid is not None:
                return tid
        return waiter_tids[0]

    if checkpoint is not None:
        from repro.runtime.checkpoint import restore_interpreter

        interp = restore_interpreter(
            program,
            checkpoint,
            memory_model=memory_model,
            scheduler=None,
            shared=shared,
            hooks=hooks,
            collect_events=True,
            signal_wake_policy=wake_policy,
        )
    else:
        interp = Interpreter(
            program,
            memory_model=memory_model,
            scheduler=None,
            shared=shared,
            hooks=hooks,
            collect_events=True,
            signal_wake_policy=wake_policy,
        )
    pos = 0
    while pos < len(schedule) and interp.bug is None:
        expected = tuple(schedule[pos])
        n_before = len(interp.events)
        pending = _find_pending(interp, expected)
        if pending is not None:
            interp._commit_flush(pending)
        else:
            _step_until_event(interp, expected, n_before)
        # One step/flush may commit several events (e.g. a fence ahead of a
        # sync SAP drains writes); verify each against the schedule.
        for sap in interp.events[n_before:]:
            if pos >= len(schedule) or sap.uid != tuple(schedule[pos]):
                want = schedule[pos] if pos < len(schedule) else "<end>"
                raise ReplayError(
                    "schedule mismatch at position %d: expected %r, got %r"
                    % (pos, want, sap.uid)
                )
            pos += 1
            position[0] = pos
    # The failing assert usually sits after the failing thread's last SAP;
    # let threads coast (without committing new SAPs) so it can fire.
    _coast(interp)
    interp.memory.drain_all()
    # Hooks with a finalize step (e.g. a PathRecorder re-recording the
    # replayed run) need the interpreter to dump still-open frames.
    for hook in hooks:
        finalize = getattr(hook, "finalize", None)
        if finalize is not None:
            finalize(interp)
    result = interp._result()
    if expected_bug is not None:
        reproduced = expected_bug.same_failure(result.bug)
    else:
        reproduced = result.bug is not None
    return ReplayOutcome(result=result, reproduced=reproduced, consumed=pos)


def _find_pending(interp, uid):
    for pending in interp.memory.pending_stores():
        if pending.sap is not None and pending.sap.uid == uid:
            choices = interp.memory.flush_choices()
            if pending not in choices:
                raise ReplayError(
                    "schedule flushes %r out of store-buffer FIFO order" % (uid,)
                )
            return pending
    return None


def _step_until_event(interp, expected, n_before):
    thread_name = expected[0]
    try:
        thread = interp.thread_by_name(thread_name)
    except KeyError:
        raise ReplayError(
            "schedule names thread %r before it was forked" % thread_name
        ) from None
    steps = 0
    while len(interp.events) == n_before and interp.bug is None:
        if thread.status != RUNNABLE:
            raise ReplayError(
                "thread %s is %s (on %r) but schedule expects %r"
                % (thread.name, thread.status, thread.block_target, expected)
            )
        interp.step_thread(thread)
        # The expected event may be a write that just entered the store
        # buffer; it must be flushed *now*, before a later read of the same
        # thread commits ahead of it.
        pending = _find_pending(interp, expected)
        if pending is not None:
            interp._commit_flush(pending)
            return
        steps += 1
        if steps > _MAX_STEPS_BETWEEN_SAPS:
            raise ReplayError(
                "thread %s ran %d steps without reaching %r"
                % (thread.name, steps, expected)
            )


def _coast(interp):
    """Step every runnable thread until it would commit another SAP."""
    if interp.bug is not None:
        return
    for thread in list(interp.threads.values()):
        steps = 0
        while (
            thread.status == RUNNABLE
            and interp.bug is None
            and steps < _MAX_STEPS_BETWEEN_SAPS
        ):
            n_before = len(interp.events)
            sap_before = thread.sap_count
            interp.step_thread(thread)
            steps += 1
            if len(interp.events) > n_before or thread.sap_count > sap_before:
                # It committed or produced a SAP past the schedule: the
                # recorded path for this thread is over; stop driving it.
                break
        if interp.bug is not None:
            break
