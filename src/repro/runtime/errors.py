"""Runtime error types."""


class MiniRuntimeError(Exception):
    """An error raised by executing a MiniLang program (e.g. div by zero)."""


class AssumeFailed(Exception):
    """Raised internally when an ``assume`` condition is false; the
    execution is abandoned rather than reported as a bug."""


class DeadlockError(MiniRuntimeError):
    """All live threads are blocked."""
