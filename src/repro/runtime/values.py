"""Concrete value operations shared by the interpreter and validators.

MiniLang has two data types, ``int`` and ``bool``; both are represented as
Python ints (bools as 0/1).  Division and modulo truncate toward zero, as in
C, so constraint validation and concrete execution agree exactly.
"""

from repro.runtime.errors import MiniRuntimeError


def truthy(value):
    return value != 0


def c_div(a, b):
    """C-style truncating division."""
    if b == 0:
        raise MiniRuntimeError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a, b):
    """C-style remainder: sign follows the dividend."""
    if b == 0:
        raise MiniRuntimeError("modulo by zero")
    return a - c_div(a, b) * b


_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": c_div,
    "%": c_mod,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "&&": lambda a, b: 1 if (a != 0 and b != 0) else 0,
    "||": lambda a, b: 1 if (a != 0 or b != 0) else 0,
}

_UNOPS = {
    "-": lambda a: -a,
    "!": lambda a: 0 if a != 0 else 1,
}


def eval_binop(op, left, right):
    """Apply binary operator ``op`` to concrete ints."""
    try:
        fn = _BINOPS[op]
    except KeyError:
        raise MiniRuntimeError("unknown binary operator %r" % op) from None
    return fn(left, right)


def eval_unop(op, operand):
    """Apply unary operator ``op`` to a concrete int."""
    try:
        fn = _UNOPS[op]
    except KeyError:
        raise MiniRuntimeError("unknown unary operator %r" % op) from None
    return fn(operand)
