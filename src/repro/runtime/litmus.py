"""Litmus-test harness for the memory-model substrate.

Classic two-thread litmus tests, expressed in MiniLang, with an
exhaustive-ish seeded exploration that collects the set of observable
final states per memory model.  This is how the runtime's store-buffer
semantics are validated against the architectural definitions of SC, TSO
and PSO (and how tests pin the exact relaxations each model adds):

=====  =========================================  ======================
name   shape                                      forbidden under
=====  =========================================  ======================
SB     store x / load y  ||  store y / load x     r1=0 ∧ r2=0 under SC
MP     store data, store flag || load flag,       flag=1 ∧ data=0 under
       load data                                  SC and TSO
LB     load x / store y  ||  load y / store x     r1=1 ∧ r2=1 everywhere
                                                  (no load speculation)
CoWW   two stores to x   ||  two loads of x       reordered same-address
                                                  stores, everywhere
=====  =========================================  ======================
"""

from dataclasses import dataclass, field

from repro.minilang import compile_source
from repro.runtime.interpreter import run_program

SB_SRC = """
int x = 0;
int y = 0;
int r1 = 0;
int r2 = 0;
void t1() { x = 1; r1 = y; }
void t2() { y = 1; r2 = x; }
int main() {
    int a = 0; int b = 0;
    a = spawn t1(); b = spawn t2();
    join(a); join(b);
    return 0;
}
"""

MP_SRC = """
int data = 0;
int flag = 0;
int r1 = 0;
int r2 = 0;
void writer() { data = 1; flag = 1; }
void reader() { r1 = flag; r2 = data; }
int main() {
    int a = 0; int b = 0;
    a = spawn writer(); b = spawn reader();
    join(a); join(b);
    return 0;
}
"""

LB_SRC = """
int x = 0;
int y = 0;
int r1 = 0;
int r2 = 0;
void t1() { r1 = x; y = 1; }
void t2() { r2 = y; x = 1; }
int main() {
    int a = 0; int b = 0;
    a = spawn t1(); b = spawn t2();
    join(a); join(b);
    return 0;
}
"""

COWW_SRC = """
int x = 0;
int r1 = 0;
int r2 = 0;
void writer() { x = 1; x = 2; }
void reader() { r1 = x; r2 = x; }
int main() {
    int a = 0; int b = 0;
    a = spawn writer(); b = spawn reader();
    join(a); join(b);
    return 0;
}
"""

LITMUS_TESTS = {
    "SB": (SB_SRC, ("r1", "r2")),
    "MP": (MP_SRC, ("r1", "r2")),
    "LB": (LB_SRC, ("r1", "r2")),
    "CoWW": (COWW_SRC, ("r1", "r2")),
}


@dataclass
class LitmusResult:
    name: str
    memory_model: str
    outcomes: set = field(default_factory=set)  # tuples of observed values
    runs: int = 0

    def saw(self, *values):
        return tuple(values) in self.outcomes


def run_litmus(name, memory_model, seeds=range(600), stickiness=0.4, flush_prob=0.08):
    """Explore one litmus test under one model; returns a LitmusResult."""
    src, registers = LITMUS_TESTS[name]
    program = compile_source(src, name="litmus-%s" % name)
    result = LitmusResult(name=name, memory_model=memory_model)
    for seed in seeds:
        run = run_program(
            program,
            memory_model,
            seed=seed,
            stickiness=stickiness,
            flush_prob=flush_prob,
        )
        outcome = tuple(run.final_globals[(reg,)] for reg in registers)
        result.outcomes.add(outcome)
        result.runs += 1
    return result


# The architectural ground truth: outcomes FORBIDDEN per test per model.
FORBIDDEN = {
    ("SB", "sc"): {(0, 0)},
    ("SB", "tso"): set(),
    ("SB", "pso"): set(),
    ("MP", "sc"): {(1, 0)},
    ("MP", "tso"): {(1, 0)},
    ("MP", "pso"): set(),
    # Loads are never speculated on any of our models.
    ("LB", "sc"): {(1, 1)},
    ("LB", "tso"): {(1, 1)},
    ("LB", "pso"): {(1, 1)},
    # Same-address store order (coherence) holds everywhere: the reader
    # can never observe x go backward (r1=2 then r2=1) or skip to the
    # second store and back.
    ("CoWW", "sc"): {(2, 1), (2, 0)},
    ("CoWW", "tso"): {(2, 1), (2, 0)},
    ("CoWW", "pso"): {(2, 1), (2, 0)},
}

# Relaxed outcomes a model MUST be able to exhibit (the witnesses).
REQUIRED_WITNESS = {
    ("SB", "tso"): (0, 0),
    ("SB", "pso"): (0, 0),
    ("MP", "pso"): (1, 0),
}
