"""Shared access point (SAP) events and bug reports.

A SAP ("shared access point", the paper's term) is any operation whose
global ordering matters: a read or write of a shared data location, or a
synchronization operation.  Both the concrete interpreter and the symbolic
executor emit per-thread SAP sequences, and they MUST agree exactly on SAP
kinds and per-thread indices.  The canonical emission rules:

* Every thread's first SAP is a synthetic ``start`` (index 0); its last is a
  synthetic ``exit``.
* ``LOAD_GLOBAL``/``LOAD_ELEM`` on a *shared* data variable -> ``read``.
* ``STORE_GLOBAL``/``STORE_ELEM`` on a *shared* data variable -> ``write``.
* ``LOCK m`` -> ``lock``;  ``UNLOCK m`` -> ``unlock``.
* ``WAIT cv, m`` desugars into three SAPs in program order:
  ``unlock``(m), ``wait``(cv), ``lock``(m) — so the locking constraints see
  the critical section split exactly where pthread_cond_wait splits it.
* ``SPAWN`` -> ``fork`` (arg: child's hierarchical name);
  ``JOIN`` -> ``join`` (arg: joined thread's name).
* ``SIGNAL`` -> ``signal``; ``BROADCAST`` -> ``broadcast``.

Thread naming follows the paper (Section 3.1 / [13]): the main thread is
``"1"``; the j-th thread forked by thread ``t`` is named ``t + ":" + j``.
This identification is deterministic given per-thread control flow, so the
offline symbolic execution reconstructs the same names.

Data addresses are tuples: ``(var,)`` for scalars, ``(var, index)`` for
array elements.  Sync addresses are the mutex/condvar name string.
"""

from dataclasses import dataclass, field

# SAP kind constants.
READ = "read"
WRITE = "write"
LOCK = "lock"
UNLOCK = "unlock"
WAIT = "wait"
SIGNAL = "signal"
BROADCAST = "broadcast"
FORK = "fork"
YIELD = "yield"
JOIN = "join"
START = "start"
EXIT = "exit"
FENCE = "fence"

DATA_KINDS = frozenset({READ, WRITE})
SYNC_KINDS = frozenset(
    {LOCK, UNLOCK, WAIT, SIGNAL, BROADCAST, FORK, JOIN, START, EXIT, YIELD, FENCE}
)

# Kinds that are "must-interleave" operations for the context-switch
# segmentation of Section 4.2 (the paper lists wait, join, yield, exit; we
# add start and fork, whose boundaries also force scheduler involvement).
MUST_INTERLEAVE_KINDS = frozenset({WAIT, JOIN, EXIT, START, YIELD, FORK})


@dataclass
class SAP:
    """One shared access point.

    ``thread`` is the hierarchical thread name; ``index`` is the SAP's
    position in its thread's program-order SAP sequence.  ``(thread, index)``
    is the SAP's globally unique id, used as the constraint order-variable
    key.

    ``value`` is only populated by the concrete interpreter (ground truth for
    tests); CLAP's recorded logs never contain it.
    """

    thread: str
    index: int
    kind: str
    addr: object = None
    value: object = None
    line: int = 0

    @property
    def uid(self):
        return (self.thread, self.index)

    @property
    def is_data(self):
        return self.kind in DATA_KINDS

    @property
    def is_read(self):
        return self.kind == READ

    @property
    def is_write(self):
        return self.kind == WRITE

    def __repr__(self):
        addr = "" if self.addr is None else " %r" % (self.addr,)
        return "SAP(%s#%d %s%s)" % (self.thread, self.index, self.kind, addr)


@dataclass
class BugReport:
    """An observed failure: a violated assertion (or runtime fault)."""

    kind: str  # 'assertion' or 'runtime'
    message: str
    thread: str = ""
    line: int = 0

    def __repr__(self):
        return "BugReport(%s, %r, thread=%s, line=%d)" % (
            self.kind,
            self.message,
            self.thread,
            self.line,
        )

    def same_failure(self, other):
        """Whether two reports describe the same failure site."""
        return (
            other is not None
            and self.kind == other.kind
            and self.message == other.message
            and self.line == other.line
        )


@dataclass
class ThreadStats:
    """Per-thread execution statistics (for the Table 1/2 metrics)."""

    instructions: int = 0
    branches: int = 0
    saps: int = 0
    sync_ops: int = 0


def sap_sort_key(sap):
    return sap.uid


def group_saps_by_thread(saps):
    """Group a SAP iterable into {thread_name: [saps in index order]}."""
    by_thread = {}
    for sap in saps:
        by_thread.setdefault(sap.thread, []).append(sap)
    for saps_of_thread in by_thread.values():
        saps_of_thread.sort(key=lambda s: s.index)
    return by_thread
