"""Per-thread execution state for the MiniLang interpreter."""

from dataclasses import dataclass, field

from repro.runtime.events import ThreadStats

RUNNABLE = "runnable"
BLOCKED = "blocked"
EXITED = "exited"

# Block reasons.
ON_MUTEX = "mutex"  # waiting to acquire a mutex
ON_COND = "cond"  # waiting inside wait() for a signal
ON_JOIN = "join"  # waiting for another thread to exit


@dataclass
class Frame:
    """One activation record: function, position, locals, operand stack."""

    func: object  # CompiledFunction
    block: int = 0
    ip: int = 0  # index into the block's instr list
    locals: dict = field(default_factory=dict)
    stack: list = field(default_factory=list)

    def current_instr(self):
        return self.func.blocks[self.block].instrs[self.ip]


@dataclass
class ThreadState:
    """A MiniLang thread.

    ``tid`` is the creation-order integer id; ``name`` is the hierarchical
    paper-style identification ("1", "1:1", "1:2:1", ...) that the offline
    symbolic execution reconstructs deterministically.
    """

    tid: int
    name: str
    frames: list = field(default_factory=list)
    status: str = RUNNABLE
    block_reason: str | None = None
    block_target: object = None  # mutex name / condvar name / joined tid
    children: int = 0  # number of threads forked so far (for naming)
    sap_count: int = 0  # per-thread SAP index counter
    stats: ThreadStats = field(default_factory=ThreadStats)
    # True right after executing a yield; schedulers deprioritize the
    # thread for one scheduling decision (cleared when stepped again).
    just_yielded: bool = False
    # Set while re-acquiring the mutex at the tail of a wait(): holds the
    # (condvar, mutex) pair so the resume logic knows not to re-run the
    # WAIT instruction from scratch.
    wait_resume: tuple | None = None

    @property
    def frame(self):
        return self.frames[-1]

    @property
    def alive(self):
        return self.status != EXITED

    @property
    def runnable(self):
        return self.status == RUNNABLE

    def next_sap_index(self):
        index = self.sap_count
        self.sap_count += 1
        return index

    def child_name(self):
        self.children += 1
        return "%s:%d" % (self.name, self.children)

    def __repr__(self):
        return "ThreadState(%s/%s, %s)" % (self.tid, self.name, self.status)
