"""The scheduler-controlled concurrent interpreter for compiled MiniLang.

Execution proceeds one bytecode instruction at a time.  At every step the
scheduler picks among the enabled actions — stepping some runnable thread,
or flushing a buffered store (TSO/PSO).  This makes every interleaving the
CLAP constraint theory can describe reachable by some choice sequence, and
it gives the tracing hooks (Ball-Larus recorder, LEAP baseline) exact,
perturbation-free observation points.

Ground-truth ordering: the interpreter appends every SAP to ``events`` in
*memory order* — sync ops and reads at execution time, writes at flush time
(immediately under SC).  CLAP itself never sees this list; it exists so
tests can check solver-computed schedules against a real feasible schedule.
"""

from dataclasses import dataclass, field

from repro.minilang import bytecode as bc
from repro.runtime import events as ev
from repro.runtime.errors import DeadlockError, MiniRuntimeError
from repro.runtime.memory import SC, make_memory
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.sync import SyncTable
from repro.runtime.thread_state import (
    BLOCKED,
    EXITED,
    ON_COND,
    ON_JOIN,
    ON_MUTEX,
    RUNNABLE,
    Frame,
    ThreadState,
)
from repro.runtime.values import eval_binop, eval_unop, truthy
from repro.runtime.checkpoint import TidHandle


class InterpreterError(Exception):
    """Internal interpreter failure (bad bytecode, step-limit, ...)."""


@dataclass
class ExecutionResult:
    """Everything observable about one finished execution."""

    program: object
    memory_model: str
    bug: ev.BugReport | None = None
    aborted: str | None = None  # 'step-limit' / 'assume-failed' / None
    steps: int = 0
    final_globals: dict = field(default_factory=dict)
    events: list = field(default_factory=list)  # SAPs in memory order
    saps_by_thread: dict = field(default_factory=dict)  # program-order SAPs
    output: list = field(default_factory=list)
    thread_names: dict = field(default_factory=dict)  # tid -> name
    stats: dict = field(default_factory=dict)  # name -> ThreadStats

    @property
    def ok(self):
        return self.bug is None and self.aborted is None

    def schedule(self):
        """The memory-order SAP uid sequence of this execution."""
        return [sap.uid for sap in self.events]

    def total_instructions(self):
        return sum(s.instructions for s in self.stats.values())

    def total_branches(self):
        return sum(s.branches for s in self.stats.values())

    def total_saps(self):
        return sum(len(saps) for saps in self.saps_by_thread.values())


class Interpreter:
    """Executes a :class:`~repro.minilang.compiler.CompiledProgram`.

    Parameters
    ----------
    program:
        The compiled program.
    memory_model:
        'sc', 'tso' or 'pso'.
    scheduler:
        A :class:`~repro.runtime.scheduler.Scheduler`; defaults to a seeded
        :class:`RandomScheduler`.
    shared:
        Set of global variable *names* to treat as shared data (SAPs).
        ``None`` means every data global is shared (maximally conservative).
    hooks:
        Recorder objects; any of the methods ``on_thread_start(thread)``,
        ``on_enter(thread, func)``, ``on_exit(thread, func)``,
        ``on_edge(thread, func, src_block, dst_block)`` and
        ``on_sap(thread, sap)`` they define will be invoked.
    max_steps:
        Abort threshold (returns ``aborted='step-limit'``).
    """

    def __init__(
        self,
        program,
        memory_model=SC,
        scheduler=None,
        shared=None,
        hooks=(),
        max_steps=2_000_000,
        collect_events=True,
        signal_wake_policy=None,
    ):
        self.program = program
        self.memory_model = memory_model
        self.scheduler = scheduler if scheduler is not None else RandomScheduler(0)
        self.shared_names = set(shared) if shared is not None else None
        shared_pred = None
        if self.shared_names is not None:
            names = self.shared_names
            shared_pred = lambda addr: addr[0] in names
        self.memory = make_memory(memory_model, program.symbols, shared_pred)
        self.sync = SyncTable(program.symbols)
        self.hooks = list(hooks)
        self.max_steps = max_steps
        self.collect_events = collect_events
        # Which waiter a signal wakes is a scheduling choice; the replayer
        # overrides the default FIFO policy to follow the computed schedule.
        self.signal_wake_policy = signal_wake_policy
        # Recorders that add synchronization (LEAP) act as memory barriers
        # around every shared access — the "Heisenberg effect" the paper
        # warns about: such instrumentation forecloses TSO/PSO reorderings.
        self._fencing_hooks = any(
            getattr(hook, "fences_memory", False) for hook in self.hooks
        )

        self.threads = {}  # tid -> ThreadState
        self.next_tid = 1
        self.steps = 0
        self.bug = None
        self.aborted = None
        self.events = []
        self.saps_by_thread = {}
        self.output = []

        main = self._spawn_thread("main", [], parent=None)
        assert main.tid == 1 and main.name == "1"

    # ------------------------------------------------------------------ #
    # Thread management
    # ------------------------------------------------------------------ #

    def _spawn_thread(self, func_name, args, parent):
        func = self.program.function(func_name)
        tid = self.next_tid
        self.next_tid += 1
        name = "1" if parent is None else parent.child_name()
        frame = Frame(func=func)
        for pname, value in zip(func.params, args):
            frame.locals[pname] = value
        thread = ThreadState(tid=tid, name=name, frames=[frame])
        self.threads[tid] = thread
        self.saps_by_thread[name] = []
        self._hook("on_thread_start", thread)
        self._hook("on_enter", thread, func.name)
        return thread

    def thread_by_name(self, name):
        for thread in self.threads.values():
            if thread.name == name:
                return thread
        raise KeyError(name)

    # ------------------------------------------------------------------ #
    # Hook / event plumbing
    # ------------------------------------------------------------------ #

    def _hook(self, method, *args):
        for hook in self.hooks:
            fn = getattr(hook, method, None)
            if fn is not None:
                fn(*args)

    def _emit_sap(self, thread, kind, addr=None, value=None, line=0, deferred=False):
        """Allocate the next SAP of ``thread``.

        ``deferred`` marks buffered writes whose memory-order event is
        appended later, at flush time.
        """
        sap = ev.SAP(
            thread=thread.name,
            index=thread.next_sap_index(),
            kind=kind,
            addr=addr,
            value=value,
            line=line,
        )
        self.saps_by_thread[thread.name].append(sap)
        thread.stats.saps += 1
        if kind not in (ev.READ, ev.WRITE):
            thread.stats.sync_ops += 1
        if self.collect_events and not deferred:
            self.events.append(sap)
        self._hook("on_sap", thread, sap)
        return sap

    def _commit_flush(self, pending):
        self.memory.flush(pending)
        if self.collect_events and pending.sap is not None:
            self.events.append(pending.sap)

    def _fence(self, thread):
        """Drain the thread's store buffers, committing events in order."""
        while True:
            heads = [
                p for p in self.memory.flush_choices() if p.thread == thread.tid
            ]
            if not heads:
                break
            for pending in heads:
                self._commit_flush(pending)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def enabled_actions(self):
        actions = [
            ("step", tid)
            for tid, thread in self.threads.items()
            if thread.status == RUNNABLE
        ]
        actions.extend(("flush", p) for p in self.memory.flush_choices())
        return actions

    def run(self, step_hook=None):
        """Execute to completion.  ``step_hook(interp)``, if given, runs
        after every action — the checkpointing driver uses it to take
        snapshots at quiescent points."""
        self.scheduler.reset()
        while self.bug is None and self.aborted is None:
            live = [t for t in self.threads.values() if t.alive]
            if not live:
                break
            actions = self.enabled_actions()
            if not actions:
                blocked = ", ".join(
                    "%s on %s %r" % (t.name, t.block_reason, t.block_target)
                    for t in live
                )
                self.bug = ev.BugReport(
                    kind="deadlock", message="deadlock: " + blocked
                )
                break
            if self.steps >= self.max_steps:
                self.aborted = "step-limit"
                break
            action = self.scheduler.choose(actions, self)
            self.steps += 1
            if action[0] == "flush":
                self._commit_flush(action[1])
            else:
                self.step_thread(self.threads[action[1]])
            if step_hook is not None:
                step_hook(self)
        self.memory.drain_all()
        return self._result()

    def _result(self):
        stats = {t.name: t.stats for t in self.threads.values()}
        return ExecutionResult(
            program=self.program,
            memory_model=self.memory_model,
            bug=self.bug,
            aborted=self.aborted,
            steps=self.steps,
            final_globals=self.memory.snapshot(),
            events=self.events,
            saps_by_thread=self.saps_by_thread,
            output=self.output,
            thread_names={t.tid: t.name for t in self.threads.values()},
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Instruction execution
    # ------------------------------------------------------------------ #

    def step_thread(self, thread):
        """Execute one instruction (or one stage of a blocking op)."""
        thread.just_yielded = False
        if thread.sap_count == 0:
            # The synthetic start SAP is a step of its own, so a schedule
            # can order it independently of the first real instruction.
            self._emit_sap(thread, ev.START)
            return
        if thread.wait_resume is not None:
            self._resume_wait(thread)
            return
        frame = thread.frame
        instr = frame.current_instr()
        thread.stats.instructions += 1
        handler = self._DISPATCH[instr.op]
        handler(self, thread, frame, instr)

    def _advance(self, thread):
        thread.frame.ip += 1

    def _is_shared(self, name):
        return self.shared_names is None or name in self.shared_names

    # -- straight-line data ops -------------------------------------------

    def _op_const(self, thread, frame, instr):
        frame.stack.append(instr.arg)
        self._advance(thread)

    def _op_load_local(self, thread, frame, instr):
        try:
            frame.stack.append(frame.locals[instr.arg])
        except KeyError:
            raise InterpreterError(
                "read of unassigned local %r in %s" % (instr.arg, frame.func.name)
            ) from None
        self._advance(thread)

    def _op_store_local(self, thread, frame, instr):
        frame.locals[instr.arg] = frame.stack.pop()
        self._advance(thread)

    def _op_load_global(self, thread, frame, instr):
        addr = (instr.arg,)
        value = self.memory.read(thread.tid, addr)
        if self._is_shared(instr.arg):
            self._emit_sap(thread, ev.READ, addr=addr, value=value, line=instr.line)
        frame.stack.append(value)
        self._advance(thread)

    def _op_store_global(self, thread, frame, instr):
        value = frame.stack.pop()
        addr = (instr.arg,)
        self._write(thread, addr, value, instr)
        self._advance(thread)

    def _op_load_elem(self, thread, frame, instr):
        index = frame.stack.pop()
        addr = (instr.arg, index)
        value = self.memory.read(thread.tid, addr)
        if self._is_shared(instr.arg):
            self._emit_sap(thread, ev.READ, addr=addr, value=value, line=instr.line)
        frame.stack.append(value)
        self._advance(thread)

    def _op_store_elem(self, thread, frame, instr):
        value = frame.stack.pop()
        index = frame.stack.pop()
        addr = (instr.arg, index)
        self._write(thread, addr, value, instr)
        self._advance(thread)

    def _write(self, thread, addr, value, instr):
        self.memory.check_addr(addr)
        if self._is_shared(addr[0]):
            sap = self._emit_sap(
                thread,
                ev.WRITE,
                addr=addr,
                value=value,
                line=instr.line,
                deferred=self.memory_model != SC,
            )
            self.memory.write(thread.tid, addr, value, sap=sap)
            if self._fencing_hooks:
                self._fence(thread)
        else:
            self.memory.write(thread.tid, addr, value)

    def _op_binop(self, thread, frame, instr):
        right = frame.stack.pop()
        left = frame.stack.pop()
        frame.stack.append(eval_binop(instr.arg, left, right))
        self._advance(thread)

    def _op_unop(self, thread, frame, instr):
        frame.stack.append(eval_unop(instr.arg, frame.stack.pop()))
        self._advance(thread)

    def _op_pop(self, thread, frame, instr):
        frame.stack.pop()
        self._advance(thread)

    # -- control flow ---------------------------------------------------------

    def _goto(self, thread, frame, dst):
        src = frame.block
        frame.block = dst
        frame.ip = 0
        self._hook("on_edge", thread, frame.func.name, src, dst)

    def _op_jump(self, thread, frame, instr):
        self._goto(thread, frame, instr.arg)

    def _op_branch(self, thread, frame, instr):
        cond = frame.stack.pop()
        thread.stats.branches += 1
        self._goto(thread, frame, instr.arg if truthy(cond) else instr.arg2)

    def _op_call(self, thread, frame, instr):
        func = self.program.function(instr.arg)
        nargs = instr.arg2
        args = frame.stack[len(frame.stack) - nargs :] if nargs else []
        del frame.stack[len(frame.stack) - nargs :]
        new_frame = Frame(func=func)
        for pname, value in zip(func.params, args):
            new_frame.locals[pname] = value
        self._advance(thread)  # return point: the instr after the call
        thread.frames.append(new_frame)
        self._hook("on_enter", thread, func.name)

    def _op_ret(self, thread, frame, instr):
        value = frame.stack.pop()
        func_name = frame.func.name
        exit_block = frame.block
        thread.frames.pop()
        self._hook("on_exit", thread, func_name, exit_block)
        if thread.frames:
            thread.frame.stack.append(value)
        else:
            self._exit_thread(thread)

    def _exit_thread(self, thread):
        self._fence(thread)
        self._emit_sap(thread, ev.EXIT)
        thread.status = EXITED
        for other in self.threads.values():
            if (
                other.status == BLOCKED
                and other.block_reason == ON_JOIN
                and other.block_target == thread.tid
            ):
                self._unblock(other)

    def _unblock(self, thread):
        thread.status = RUNNABLE
        thread.block_reason = None
        thread.block_target = None

    def _block(self, thread, reason, target):
        thread.status = BLOCKED
        thread.block_reason = reason
        thread.block_target = target

    # -- threading ------------------------------------------------------------

    def _op_spawn(self, thread, frame, instr):
        nargs = instr.arg2
        args = frame.stack[len(frame.stack) - nargs :] if nargs else []
        del frame.stack[len(frame.stack) - nargs :]
        self._fence(thread)
        child = self._spawn_thread(instr.arg, args, parent=thread)
        self._emit_sap(thread, ev.FORK, addr=child.name, line=instr.line)
        frame.stack.append(TidHandle(child.tid))
        self._advance(thread)

    def _op_join(self, thread, frame, instr):
        handle = frame.stack[-1]
        target = self.threads.get(handle)
        if target is None:
            raise MiniRuntimeError("join on invalid thread handle %r" % handle)
        if target.status != EXITED:
            self._block(thread, ON_JOIN, target.tid)
            return
        frame.stack.pop()
        self._fence(thread)
        self._emit_sap(thread, ev.JOIN, addr=target.name, line=instr.line)
        self._advance(thread)

    # -- mutexes ------------------------------------------------------------

    def _op_lock(self, thread, frame, instr):
        mutex = self.sync.mutex(instr.arg)
        if mutex.held:
            self._block(thread, ON_MUTEX, mutex.name)
            return
        mutex.owner = thread.tid
        self._fence(thread)
        self._emit_sap(thread, ev.LOCK, addr=mutex.name, line=instr.line)
        self._advance(thread)

    def _op_unlock(self, thread, frame, instr):
        mutex = self.sync.mutex(instr.arg)
        if mutex.owner != thread.tid:
            raise MiniRuntimeError(
                "thread %s unlocking %r it does not hold" % (thread.name, mutex.name)
            )
        self._fence(thread)
        self._emit_sap(thread, ev.UNLOCK, addr=mutex.name, line=instr.line)
        self._release_mutex(mutex)
        self._advance(thread)

    def _release_mutex(self, mutex):
        mutex.owner = None
        for other in self.threads.values():
            if (
                other.status == BLOCKED
                and other.block_reason == ON_MUTEX
                and other.block_target == mutex.name
            ):
                self._unblock(other)

    # -- condition variables -------------------------------------------------
    #
    # wait(cv, m) desugars into three SAPs: unlock(m), wait(cv), lock(m).
    # Stage 1 (first hit): fence, unlock SAP, join cv's waiter list, block.
    # Stage 2 (after signal): emit the wait SAP (so signal < wait in memory
    # order), then re-acquire the mutex like a normal lock.

    def _op_wait(self, thread, frame, instr):
        cv = self.sync.condvar(instr.arg)
        mutex = self.sync.mutex(instr.arg2)
        if mutex.owner != thread.tid:
            raise MiniRuntimeError(
                "thread %s waiting on %r without holding %r"
                % (thread.name, cv.name, mutex.name)
            )
        self._fence(thread)
        self._emit_sap(thread, ev.UNLOCK, addr=mutex.name, line=instr.line)
        self._release_mutex(mutex)
        cv.waiters.append(thread.tid)
        thread.wait_resume = ("signaled-pending", cv.name, mutex.name, instr.line)
        self._block(thread, ON_COND, cv.name)

    def _resume_wait(self, thread):
        stage, cv_name, mutex_name, line = thread.wait_resume
        if stage == "signaled-pending":
            self._emit_sap(thread, ev.WAIT, addr=cv_name, line=line)
            thread.wait_resume = ("reacquire", cv_name, mutex_name, line)
            stage = "reacquire"
        if stage == "reacquire":
            mutex = self.sync.mutex(mutex_name)
            if mutex.held:
                self._block(thread, ON_MUTEX, mutex.name)
                return
            mutex.owner = thread.tid
            self._emit_sap(thread, ev.LOCK, addr=mutex.name, line=line)
            thread.wait_resume = None
            self._advance(thread)

    def _op_signal(self, thread, frame, instr):
        cv = self.sync.condvar(instr.arg)
        self._fence(thread)
        self._emit_sap(thread, ev.SIGNAL, addr=cv.name, line=instr.line)
        if cv.waiters:
            if self.signal_wake_policy is not None:
                tid = self.signal_wake_policy(self, cv, list(cv.waiters))
            else:
                tid = cv.waiters[0]
            cv.waiters.remove(tid)
            self._unblock(self.threads[tid])
        self._advance(thread)

    def _op_broadcast(self, thread, frame, instr):
        cv = self.sync.condvar(instr.arg)
        self._fence(thread)
        self._emit_sap(thread, ev.BROADCAST, addr=cv.name, line=instr.line)
        while cv.waiters:
            self._unblock(self.threads[cv.waiters.pop(0)])
        self._advance(thread)

    # -- checks, misc ---------------------------------------------------------

    def _op_assert(self, thread, frame, instr):
        cond = frame.stack.pop()
        if not truthy(cond):
            self.bug = ev.BugReport(
                kind="assertion",
                message=instr.arg,
                thread=thread.name,
                line=instr.line,
            )
        self._advance(thread)

    def _op_assume(self, thread, frame, instr):
        cond = frame.stack.pop()
        if not truthy(cond):
            self.aborted = "assume-failed"
        self._advance(thread)

    def _op_yield(self, thread, frame, instr):
        # yield is a SAP: a must-interleave segment boundary (Section 4.2).
        # It is NOT a memory fence (sched_yield has no barrier semantics).
        self._emit_sap(thread, ev.YIELD, line=instr.line)
        thread.just_yielded = True
        self._advance(thread)

    def _op_fence(self, thread, frame, instr):
        # A full memory fence: drains this thread's store buffers, same as
        # the implicit fence before every sync SAP.
        self._fence(thread)
        self._emit_sap(thread, ev.FENCE, line=instr.line)
        self._advance(thread)

    def _op_print(self, thread, frame, instr):
        nargs = instr.arg
        args = frame.stack[len(frame.stack) - nargs :] if nargs else []
        del frame.stack[len(frame.stack) - nargs :]
        self.output.append((thread.name, tuple(args)))
        self._advance(thread)

    _DISPATCH = {
        bc.CONST: _op_const,
        bc.LOAD_LOCAL: _op_load_local,
        bc.STORE_LOCAL: _op_store_local,
        bc.LOAD_GLOBAL: _op_load_global,
        bc.STORE_GLOBAL: _op_store_global,
        bc.LOAD_ELEM: _op_load_elem,
        bc.STORE_ELEM: _op_store_elem,
        bc.BINOP: _op_binop,
        bc.UNOP: _op_unop,
        bc.POP: _op_pop,
        bc.JUMP: _op_jump,
        bc.BRANCH: _op_branch,
        bc.CALL: _op_call,
        bc.RET: _op_ret,
        bc.SPAWN: _op_spawn,
        bc.JOIN: _op_join,
        bc.LOCK: _op_lock,
        bc.UNLOCK: _op_unlock,
        bc.WAIT: _op_wait,
        bc.SIGNAL: _op_signal,
        bc.BROADCAST: _op_broadcast,
        bc.ASSERT: _op_assert,
        bc.ASSUME: _op_assume,
        bc.YIELD: _op_yield,
        bc.FENCE: _op_fence,
        bc.PRINT: _op_print,
    }


def run_program(
    program,
    memory_model=SC,
    seed=0,
    shared=None,
    hooks=(),
    scheduler=None,
    max_steps=2_000_000,
    **scheduler_kwargs,
):
    """Convenience wrapper: run ``program`` once and return the result."""
    if scheduler is None:
        scheduler = RandomScheduler(seed, **scheduler_kwargs)
    interp = Interpreter(
        program,
        memory_model=memory_model,
        scheduler=scheduler,
        shared=shared,
        hooks=hooks,
        max_steps=max_steps,
    )
    return interp.run()
