"""Mutex and condition-variable state for the scheduler-controlled runtime.

Blocking is modelled by thread status: a thread that cannot proceed is
marked blocked with a reason, and the scheduler only selects runnable
threads.  Wake-ups happen eagerly (unlock marks all waiters-for-the-mutex
runnable; they re-contend when next scheduled), which mirrors how futex
wake-ups behave and keeps every interleaving reachable.
"""

from dataclasses import dataclass, field


@dataclass
class MutexState:
    name: str
    owner: int | None = None  # owning thread id or None

    @property
    def held(self):
        return self.owner is not None


@dataclass
class CondVarState:
    name: str
    # Thread ids currently blocked in wait() on this condvar, in arrival
    # order.  signal() wakes the first; broadcast() wakes all.
    waiters: list = field(default_factory=list)


class SyncTable:
    """All mutexes and condition variables of one execution."""

    def __init__(self, symbols):
        self.mutexes = {name: MutexState(name) for name in symbols.mutexes()}
        self.condvars = {name: CondVarState(name) for name in symbols.condvars()}

    def mutex(self, name):
        return self.mutexes[name]

    def condvar(self, name):
        return self.condvars[name]
