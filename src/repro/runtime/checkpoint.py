"""Execution checkpointing (the paper's Section 6.4 future work).

"For very long runs ... we need to break up the execution so that each
execution segment has tractable size of constraints.  Checkpointing is a
common technique used in such contexts.  We plan to integrate CLAP with
checkpointing in future."

A checkpoint is a consistent full-state snapshot taken at a *quiescent*
point of the recorded run: store buffers drained (the checkpoint acts as a
global fence), no mutex held, no thread parked on a condition variable or
mid-``wait()``.  Quiescent points are frequent in practice and make the
resume semantics clean — no lock region or signal/wait pair spans the
checkpoint, so the suffix is a self-contained constraint problem whose
initial memory is the snapshot.

The offline phase then only analyzes the post-checkpoint *suffix*:
the path recorder restarts its logs with ``resume`` tokens
(:meth:`repro.tracing.recorder.PathRecorder.checkpoint`), the symbolic
executor re-executes each thread from its snapshotted frames, and replay
starts from :func:`restore_interpreter` instead of program entry.
"""

import copy
from dataclasses import dataclass, field

from repro.runtime.thread_state import EXITED, RUNNABLE, Frame, ThreadState


class TidHandle(int):
    """A thread handle value: an int (the tid) that remembers it is a
    handle, so checkpoints can map it back to a hierarchical thread name
    for the symbolic executor."""

    __slots__ = ()


@dataclass
class FrameSnapshot:
    func: str
    block: int
    ip: int
    locals: dict  # name -> int | ('handle', thread_name)
    stack: list


@dataclass
class ThreadSnapshot:
    tid: int
    name: str
    exited: bool
    children: int
    frames: list = field(default_factory=list)  # outermost first


@dataclass
class Checkpoint:
    memory: dict  # addr -> int
    threads: list  # ThreadSnapshot list
    next_tid: int = 2
    step: int = 0

    def live_threads(self):
        return [t for t in self.threads if not t.exited]

    def preexisting(self):
        """Names of threads that started before the checkpoint."""
        return {t.name for t in self.threads}

    def preexited(self):
        return {t.name for t in self.threads if t.exited}

    def thread(self, name):
        for t in self.threads:
            if t.name == name:
                return t
        raise KeyError(name)


def is_quiescent(interp):
    """Whether the interpreter is at a checkpointable point."""
    for mutex in interp.sync.mutexes.values():
        if mutex.held:
            return False
    for cv in interp.sync.condvars.values():
        if cv.waiters:
            return False
    for thread in interp.threads.values():
        if thread.wait_resume is not None:
            return False
        if thread.status == "blocked" and thread.block_reason == "cond":
            return False
    return True


def _snapshot_value(value, tid_names):
    if isinstance(value, TidHandle):
        return ("handle", tid_names[int(value)])
    return value


def _restore_value(value, name_tids):
    if isinstance(value, tuple) and len(value) == 2 and value[0] == "handle":
        return TidHandle(name_tids[value[1]])
    return value


def take_checkpoint(interp):
    """Drain store buffers and snapshot the whole execution state."""
    interp.memory.drain_all()
    tid_names = {t.tid: t.name for t in interp.threads.values()}
    threads = []
    for thread in interp.threads.values():
        snap = ThreadSnapshot(
            tid=thread.tid,
            name=thread.name,
            exited=thread.status == EXITED,
            children=thread.children,
        )
        for frame in thread.frames:
            snap.frames.append(
                FrameSnapshot(
                    func=frame.func.name,
                    block=frame.block,
                    ip=frame.ip,
                    locals={
                        k: _snapshot_value(v, tid_names)
                        for k, v in frame.locals.items()
                    },
                    stack=[_snapshot_value(v, tid_names) for v in frame.stack],
                )
            )
        threads.append(snap)
    return Checkpoint(
        memory=interp.memory.snapshot(),
        threads=threads,
        next_tid=interp.next_tid,
        step=interp.steps,
    )


def restore_interpreter(program, checkpoint, **interp_kwargs):
    """Build an Interpreter whose state is the checkpoint (not program
    entry).  Restored live threads re-emit a fresh ``start`` SAP on their
    first step — the resume point — matching the suffix SAP numbering of
    the symbolic executor."""
    from repro.runtime.interpreter import Interpreter

    interp = Interpreter(program, **interp_kwargs)
    interp.threads.clear()
    interp.saps_by_thread.clear()
    interp.next_tid = checkpoint.next_tid
    name_tids = {t.name: t.tid for t in checkpoint.threads}
    for snap in checkpoint.threads:
        frames = []
        for fs in snap.frames:
            frame = Frame(func=program.function(fs.func))
            frame.block = fs.block
            frame.ip = fs.ip
            frame.locals = {
                k: _restore_value(v, name_tids) for k, v in fs.locals.items()
            }
            frame.stack = [_restore_value(v, name_tids) for v in fs.stack]
            frames.append(frame)
        thread = ThreadState(
            tid=snap.tid,
            name=snap.name,
            frames=frames,
            status=EXITED if snap.exited else RUNNABLE,
            children=snap.children,
        )
        if snap.exited:
            # Keep the schedule clean: exited husks never step again and
            # their suffix emits no SAPs.
            thread.sap_count = 1
        interp.threads[snap.tid] = thread
        interp.saps_by_thread[snap.name] = []
    for addr, value in checkpoint.memory.items():
        interp.memory.cells[addr] = value
    return interp
