"""Scheduler-controlled concurrent runtime for MiniLang.

This package is the "commodity multiprocessor" substrate of the CLAP
reproduction: it executes compiled MiniLang programs under an explicit
thread scheduler and a pluggable memory model (SC, TSO, PSO with per-thread
store buffers), emits shared-access-point (SAP) events to recorder hooks,
and supports deterministic replay of solver-computed schedules.
"""

from repro.runtime.events import SAP, BugReport
from repro.runtime.interpreter import (
    ExecutionResult,
    Interpreter,
    InterpreterError,
    run_program,
)
from repro.runtime.memory import SC, TSO, PSO, make_memory
from repro.runtime.replay import ReplayError, replay_schedule
from repro.runtime.scheduler import (
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    find_buggy_seed,
)

__all__ = [
    "SAP",
    "BugReport",
    "ExecutionResult",
    "Interpreter",
    "InterpreterError",
    "run_program",
    "SC",
    "TSO",
    "PSO",
    "make_memory",
    "ReplayError",
    "replay_schedule",
    "FixedScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "find_buggy_seed",
]
