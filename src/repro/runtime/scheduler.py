"""Thread schedulers for the MiniLang interpreter.

A scheduler is asked, at every step, to pick one *action* from the set of
currently enabled actions.  Actions are:

* ``("step", tid)``   — execute one instruction of thread ``tid``;
* ``("flush", pending)`` — make one buffered store globally visible
  (TSO/PSO only; ``pending`` is a :class:`~repro.runtime.memory.PendingStore`).

Because every instruction is a potential preemption point and store-buffer
flushes are explicit actions, every SC/TSO/PSO interleaving the constraint
theory can express is reachable by some scheduler choice sequence — which
is what makes the seeded :class:`RandomScheduler` an adequate stand-in for
the paper's "insert timing delays and run many times" bug-triggering setup.
"""

import random


class Scheduler:
    """Base class: subclasses override :meth:`choose`."""

    def choose(self, actions, interp):
        raise NotImplementedError

    def reset(self):
        """Called once before an execution starts."""


class RandomScheduler(Scheduler):
    """Seeded random scheduler with a stickiness bias.

    With probability ``stickiness`` the previously running thread keeps
    running (when still enabled); otherwise a uniformly random enabled
    action is taken.  Low stickiness yields heavy interleaving; high
    stickiness yields long thread bursts (more realistic, fewer races hit).
    ``flush_prob`` biases how eagerly store buffers drain: 1.0 approximates
    SC even on TSO/PSO; small values keep stores buffered long enough for
    relaxed-memory reorderings to be observable.
    """

    def __init__(self, seed=0, stickiness=0.7, flush_prob=0.35):
        self.seed = seed
        self.stickiness = stickiness
        self.flush_prob = flush_prob
        self.rng = random.Random(seed)
        self.last_tid = None

    def reset(self):
        self.rng = random.Random(self.seed)
        self.last_tid = None

    def choose(self, actions, interp):
        flushes = [a for a in actions if a[0] == "flush"]
        steps = [a for a in actions if a[0] == "step"]
        if flushes and (not steps or self.rng.random() < self.flush_prob):
            return self.rng.choice(flushes)
        # Honour sched_yield: a thread that just yielded loses its turn
        # when any other thread can run.
        fresh = [
            a for a in steps if not interp.threads[a[1]].just_yielded
        ]
        pool = fresh or steps
        if self.last_tid is not None and self.rng.random() < self.stickiness:
            for action in pool:
                if action[1] == self.last_tid:
                    return action
        action = self.rng.choice(pool)
        self.last_tid = action[1]
        return action


class RoundRobinScheduler(Scheduler):
    """Deterministic round-robin with a per-thread quantum; flushes happen
    whenever a thread's quantum expires (and at the very end)."""

    def __init__(self, quantum=1):
        self.quantum = quantum
        self.remaining = quantum
        self.last_tid = None

    def reset(self):
        self.remaining = self.quantum
        self.last_tid = None

    def choose(self, actions, interp):
        steps = [a for a in actions if a[0] == "step"]
        flushes = [a for a in actions if a[0] == "flush"]
        if not steps:
            return flushes[0]
        if self.last_tid is not None and self.remaining > 0:
            for action in steps:
                if action[1] == self.last_tid:
                    self.remaining -= 1
                    return action
        if flushes:
            return flushes[0]
        tids = sorted(a[1] for a in steps)
        if self.last_tid is None:
            pick = tids[0]
        else:
            later = [t for t in tids if t > self.last_tid]
            pick = later[0] if later else tids[0]
        self.last_tid = pick
        self.remaining = self.quantum - 1
        return ("step", pick)


class FixedScheduler(Scheduler):
    """Plays back an explicit decision list (used by unit tests).

    Each decision is ``("step", tid)`` or ``("flush", addr)``; a flush
    decision matches the pending store with that address.  When decisions
    run out, falls back to the first enabled step action.
    """

    def __init__(self, decisions):
        self.decisions = list(decisions)
        self.pos = 0

    def reset(self):
        self.pos = 0

    def choose(self, actions, interp):
        while self.pos < len(self.decisions):
            kind, arg = self.decisions[self.pos]
            self.pos += 1
            if kind == "step":
                for action in actions:
                    if action[0] == "step" and action[1] == arg:
                        return action
            else:
                for action in actions:
                    if action[0] == "flush" and action[1].addr == arg:
                        return action
            # Decision not currently enabled: skip it (keeps tests terse).
        for action in actions:
            if action[0] == "step":
                return action
        return actions[0]


def find_buggy_seed(
    program,
    memory_model="sc",
    seeds=range(200),
    stickiness=0.7,
    flush_prob=0.35,
    max_steps=2_000_000,
    shared=None,
):
    """Search seeded random schedules for one that manifests a failure.

    This plays the role of the paper's bug-triggering setup ("we typically
    inserted timing delays at key places and ran it many times until the
    bug occurred").  Returns ``(seed, ExecutionResult)`` for the first seed
    whose execution ends with a bug, or ``None`` if none of the seeds hits.
    """
    from repro.runtime.interpreter import Interpreter

    for seed in seeds:
        sched = RandomScheduler(seed, stickiness=stickiness, flush_prob=flush_prob)
        interp = Interpreter(
            program,
            memory_model=memory_model,
            scheduler=sched,
            max_steps=max_steps,
            shared=shared,
        )
        result = interp.run()
        if result.bug is not None:
            return seed, result
    return None
