"""The CLAP online recorder: per-thread Ball-Larus whole-path profiles.

This is CLAP's entire runtime footprint.  It subscribes to the
interpreter's control-flow hooks only — it never looks at memory accesses,
values, or other threads — so it needs **no synchronization**: every
counter and log it touches is thread-local.  (That property is the paper's
first headline advantage over order/value recorders such as LEAP.)

Overhead accounting: ``instrumentation_ops`` counts the dynamic
instrumentation actions a compiled-in BL pass would execute — one counter
increment per non-zero-valued CFG edge traversed, and one log append per
function entry/exit/back-edge.  The benchmark harness turns this count
into the simulated slowdown reported in Table 2.
"""

from repro.tracing.ball_larus import ProgramPaths
from repro.tracing.logfmt import encode_tokens


class StreamingTraceSink:
    """Flush newly recorded tokens, chunk by chunk, to a durable writer.

    ``writer`` is anything with ``write_chunk(thread, tokens, final=False)``
    and ``close(meta=None)`` — in production a
    :class:`repro.store.container.ClapWriter`.  The recorder calls
    :meth:`flush` whenever a thread has accumulated ``flush_every`` new
    tokens and once more (``final=True``) at :meth:`PathRecorder.finalize`;
    because every chunk is durable the moment it is written, a recorder
    that crashes mid-run leaves a recoverable prefix on disk instead of
    nothing (the store's ``recover`` synthesizes the missing ``partial``
    tokens).
    """

    def __init__(self, writer, flush_every=16):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.writer = writer
        self.flush_every = flush_every

    def flush(self, thread, tokens, final=False):
        self.writer.write_chunk(thread, tokens, final=final)

    def close(self, meta=None):
        self.writer.close(meta=meta)


class PathRecorder:
    """Interpreter hook that records thread-local execution paths."""

    def __init__(self, program, paths=None, sink=None):
        self.program = program
        self.paths = paths if paths is not None else ProgramPaths.build(program)
        self.func_ids = {name: i for i, name in enumerate(sorted(program.functions))}
        self.func_names = {i: name for name, i in self.func_ids.items()}
        # thread name -> list of tokens
        self.logs = {}
        # thread name -> stack of [func_name, counter, current_block]
        self._stacks = {}
        # Optional StreamingTraceSink; thread name -> tokens already flushed.
        self.sink = sink
        self._flushed = {}
        self.instrumentation_ops = 0
        self._finalized = False

    # -- streaming ----------------------------------------------------------

    def _maybe_flush(self, thread_name):
        sink = self.sink
        if sink is None:
            return
        log = self.logs[thread_name]
        done = self._flushed[thread_name]
        if len(log) - done >= sink.flush_every:
            sink.flush(thread_name, log[done:])
            self._flushed[thread_name] = len(log)

    def _flush_pending(self, final=False):
        """Push every thread's unflushed tail to the sink."""
        if self.sink is None:
            return
        for thread_name in sorted(self.logs):
            log = self.logs[thread_name]
            done = self._flushed[thread_name]
            if len(log) > done:
                self.sink.flush(thread_name, log[done:], final=final)
                self._flushed[thread_name] = len(log)

    # -- interpreter hook interface -----------------------------------------

    def on_thread_start(self, thread):
        self.logs[thread.name] = []
        self._stacks[thread.name] = []
        self._flushed[thread.name] = 0

    def on_enter(self, thread, func_name):
        stack = self._stacks[thread.name]
        stack.append([func_name, 0, 0])
        self.logs[thread.name].append(("enter", self.func_ids[func_name]))
        self.instrumentation_ops += 1
        self._maybe_flush(thread.name)

    def on_edge(self, thread, func_name, src, dst):
        frame = self._stacks[thread.name][-1]
        bl = self.paths[func_name]
        reset = bl.backedge_reset.get((src, dst))
        if reset is not None:
            emit_add, new_counter = reset
            self.logs[thread.name].append(("path", frame[1] + emit_add))
            frame[1] = new_counter
            self.instrumentation_ops += 1
            self._maybe_flush(thread.name)
        else:
            val = bl.real_edge_val.get((src, dst), 0)
            if val:
                frame[1] += val
                self.instrumentation_ops += 1
        frame[2] = dst

    def on_exit(self, thread, func_name, exit_block):
        stack = self._stacks[thread.name]
        frame = stack.pop()
        bl = self.paths[func_name]
        final = frame[1] + bl.ret_edge_val.get(exit_block, 0)
        log = self.logs[thread.name]
        log.append(("path", final))
        log.append(("exit",))
        self.instrumentation_ops += 1
        self._maybe_flush(thread.name)

    # -- checkpointing ----------------------------------------------------

    def checkpoint(self, interpreter):
        """Archive the logs so far and restart recording mid-execution.

        Implements the log side of the paper's Section 6.4 future work
        ("we plan to integrate CLAP with checkpointing"): each live frame
        contributes a ``resume`` token naming its current position, its
        Ball-Larus counter restarts at zero, and subsequent path ids
        decode as *suffix* segments from the resume block.

        Returns {thread_name: archived token list} for the prefix.
        """
        self._flush_pending(final=True)
        archived = self.logs
        self.logs = {}
        self._flushed = {}
        for thread in interpreter.threads.values():
            stack = self._stacks.get(thread.name)
            if stack is None:
                continue
            log = []
            for frame_state, frame in zip(stack, thread.frames):
                func_name = frame_state[0]
                log.append(("resume", self.func_ids[func_name], frame.block, frame.ip))
                frame_state[1] = 0
                frame_state[2] = frame.block
            self.logs[thread.name] = log
            self._flushed[thread.name] = 0
        return archived

    # -- finalization ---------------------------------------------------------

    def finalize(self, interpreter):
        """Dump partial paths for frames still live at the stop point.

        In the real system this is the crash-time log flush: each live
        frame contributes its unfinished path counter plus the exact stop
        position (block, ip).
        """
        if self._finalized:
            return
        self._finalized = True
        for thread in interpreter.threads.values():
            stack = self._stacks.get(thread.name)
            if not stack:
                continue
            log = self.logs[thread.name]
            # A thread stopped inside wait() already committed one or two of
            # the wait's three sub-SAPs; record how many (thread-local info).
            wait_stage = 0
            if thread.wait_resume is not None:
                wait_stage = 1 if thread.wait_resume[0] == "signaled-pending" else 2
            # Dump innermost-first: the decoder processes tokens in order
            # with the innermost open frame on top of its stack, so each
            # ``partial`` token closes the current top.
            innermost = True
            for frame_state, frame in reversed(list(zip(stack, thread.frames))):
                func_name, counter, _ = frame_state
                stage = wait_stage if innermost else 0
                log.append(("partial", counter, frame.block, frame.ip, stage))
                innermost = False
        self._flush_pending(final=True)

    # -- results ---------------------------------------------------------------

    def encoded_logs(self):
        """{thread_name: bytes} — what would be written to disk."""
        return {name: encode_tokens(tokens) for name, tokens in self.logs.items()}

    def log_size_bytes(self):
        return sum(len(data) for data in self.encoded_logs().values())
