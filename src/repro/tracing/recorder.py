"""The CLAP online recorder: per-thread Ball-Larus whole-path profiles.

This is CLAP's entire runtime footprint.  It subscribes to the
interpreter's control-flow hooks only — it never looks at memory accesses,
values, or other threads — so it needs **no synchronization**: every
counter and log it touches is thread-local.  (That property is the paper's
first headline advantage over order/value recorders such as LEAP.)

Overhead accounting: ``instrumentation_ops`` counts the dynamic
instrumentation actions a compiled-in BL pass would execute — one counter
increment per non-zero-valued CFG edge traversed, and one log append per
function entry/exit/back-edge.  The benchmark harness turns this count
into the simulated slowdown reported in Table 2.

Two recorder variants share the hook interface:

:class:`PathRecorder`
    The straightforward reference implementation.
:class:`FastPathRecorder`
    The production fast path: per-frame merged edge tables, a per-thread
    identity cache that skips dict lookups while the same thread keeps
    running, in-place run-length folding of repeated path tokens (a loop
    iterating N times appends one mutable run cell, not N tuples), and
    deferred op accounting.  Logs materialize to plain tuples at flush
    and finalize, so everything downstream sees identical token streams.

Two sinks consume flushes:

:class:`StreamingTraceSink`
    Unbounded durable streaming to a ``.clap`` writer.
:class:`RingTraceSink`
    The bounded flight recorder: encodes flushes into fixed-size framed
    segments (see ``logfmt`` segment framing) and evicts the oldest
    segments in O(1) under a per-thread byte budget.
"""

from collections import deque

from repro.tracing.ball_larus import ProgramPaths
from repro.tracing.logfmt import (
    SegmentAnchor,
    TAG_PATH,
    TAG_REPEAT,
    _TOKEN_TAGS,
    decode_tokens,
    encode_segment,
    encode_tokens,
    write_varint,
)


class StreamingTraceSink:
    """Flush newly recorded tokens, chunk by chunk, to a durable writer.

    ``writer`` is anything with ``write_chunk(thread, tokens, final=False)``
    and ``close(meta=None)`` — in production a
    :class:`repro.store.container.ClapWriter`.  The recorder calls
    :meth:`flush` whenever a thread has accumulated ``flush_every`` new
    tokens and once more (``final=True``) at :meth:`PathRecorder.finalize`;
    because every chunk is durable the moment it is written, a recorder
    that crashes mid-run leaves a recoverable prefix on disk instead of
    nothing (the store's ``recover`` synthesizes the missing ``partial``
    tokens).

    Every thread that started gets exactly one ``final=True`` flush at
    finalize, even when it has no buffered tokens left (or never reached
    ``flush_every`` at all): the final chunk is what marks the on-disk log
    complete, so skipping it would make a cleanly finished trace look like
    a crashed one.
    """

    def __init__(self, writer, flush_every=16):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.writer = writer
        self.flush_every = flush_every

    def flush(self, thread, tokens, final=False):
        self.writer.write_chunk(thread, tokens, final=final)

    def close(self, meta=None):
        self.writer.close(meta=meta)


class RingSegment:
    """One sealed flight-recorder segment: framed anchor + record bytes."""

    __slots__ = ("anchor", "body", "n_tokens")

    def __init__(self, anchor, body, n_tokens):
        self.anchor = anchor
        self.body = body
        self.n_tokens = n_tokens


class _RingThread:
    __slots__ = (
        "stack",
        "segments",
        "cur",
        "cur_anchor",
        "cur_tokens",
        "run_pid",
        "run_count",
        "tokens_seen",
        "bytes_seen",
        "segments_sealed",
        "segments_evicted",
        "evicted_tokens",
        "evicted_bytes",
        "retained_bytes",
        "flushes",
        "final",
    )

    def __init__(self):
        # Mirror of the recorder's open-frame chain: [func_id, calls_done].
        self.stack = []
        self.segments = deque()
        self.cur = bytearray()
        self.cur_anchor = None
        self.cur_tokens = 0
        self.run_pid = None
        self.run_count = 0
        self.tokens_seen = 0
        self.bytes_seen = 0
        self.segments_sealed = 0
        self.segments_evicted = 0
        self.evicted_tokens = 0
        self.evicted_bytes = 0
        self.retained_bytes = 0
        self.flushes = 0
        self.final = False


class RingTraceSink:
    """Bounded flight-recorder sink: a per-thread ring of encoded segments.

    Incoming flushes are encoded record-by-record into the current
    segment.  Repeated ``path`` tokens fold into a single pending run that
    survives flush boundaries and is emitted as one ``TAG_REPEAT`` record
    when broken — exactly the run-length logic of
    :func:`repro.tracing.logfmt.encode_tokens`, so the concatenation of
    all segment bodies is *byte-identical* to the unbounded encoding and
    any record-aligned suffix of it still decodes.

    A segment seals when appending the next record would push it past
    ``segment_bytes``; sealing snapshots nothing and resets no counters
    (path ids always decode standalone), it just freezes the byte range.
    Each segment's :class:`~repro.tracing.logfmt.SegmentAnchor` — the
    open-frame chain and cumulative stream position at its first record —
    was captured when that first record was appended.  When the retained
    bytes exceed ``ring_bytes``, the oldest sealed segments pop off the
    left of a deque (O(1) each); the current segment is never evicted, so
    retention exceeds the budget by at most one segment.
    """

    def __init__(self, ring_bytes, segment_bytes=512, flush_every=16):
        if ring_bytes < 1:
            raise ValueError("ring_bytes must be >= 1")
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.ring_bytes = ring_bytes
        self.segment_bytes = segment_bytes
        self.flush_every = flush_every
        self._threads = {}

    # -- sink protocol ------------------------------------------------------

    def flush(self, thread, tokens, final=False):
        st = self._threads.get(thread)
        if st is None:
            st = self._threads[thread] = _RingThread()
        st.flushes += 1
        for token in tokens:
            kind = token[0]
            if kind == "path":
                pid = token[1]
                if st.run_pid == pid:
                    st.run_count += 1
                else:
                    if st.run_pid is not None:
                        self._end_run(st)
                    st.run_pid = pid
                    st.run_count = 1
                continue
            if st.run_pid is not None:
                self._end_run(st)
            rec = bytearray()
            rec.append(_TOKEN_TAGS[kind])
            for value in token[1:]:
                write_varint(rec, value)
            self._append_record(st, bytes(rec), 1)
            # Mirror the frame chain *after* appending, so a segment whose
            # first record is this token anchors at the pre-token state.
            if kind == "enter" or kind == "resume":
                st.stack.append([token[1], 0])
            elif kind == "exit":
                if st.stack:
                    st.stack.pop()
                    if st.stack:
                        st.stack[-1][1] += 1
            elif kind == "partial":
                if st.stack:
                    st.stack.pop()
        if final:
            if st.run_pid is not None:
                self._end_run(st)
            st.final = True

    def close(self, meta=None):
        pass

    # -- internals ----------------------------------------------------------

    def _end_run(self, st):
        pid = st.run_pid
        count = st.run_count
        st.run_pid = None
        st.run_count = 0
        rec = bytearray()
        if count >= 2:
            rec.append(TAG_REPEAT)
            write_varint(rec, pid)
            write_varint(rec, count)
        else:
            rec.append(TAG_PATH)
            write_varint(rec, pid)
        self._append_record(st, bytes(rec), count)

    def _append_record(self, st, rec, n_tokens):
        if st.cur and len(st.cur) + len(rec) > self.segment_bytes:
            self._seal(st)
        if st.cur_anchor is None:
            st.cur_anchor = SegmentAnchor(
                frames=tuple((fid, calls) for fid, calls in st.stack),
                tokens_before=st.tokens_seen,
                bytes_before=st.bytes_seen,
                segments_before=st.segments_sealed,
            )
        st.cur.extend(rec)
        st.cur_tokens += n_tokens
        st.tokens_seen += n_tokens
        st.bytes_seen += len(rec)
        st.retained_bytes += len(rec)
        while st.retained_bytes > self.ring_bytes and st.segments:
            seg = st.segments.popleft()
            st.segments_evicted += 1
            st.retained_bytes -= len(seg.body)
            st.evicted_tokens += seg.n_tokens
            st.evicted_bytes += len(seg.body)

    def _seal(self, st):
        st.segments.append(
            RingSegment(st.cur_anchor, bytes(st.cur), st.cur_tokens)
        )
        st.segments_sealed += 1
        st.cur = bytearray()
        st.cur_anchor = None
        st.cur_tokens = 0

    # -- results ------------------------------------------------------------

    def threads(self):
        return sorted(self._threads)

    def iter_segments(self, thread):
        """Surviving segments oldest-first, including the open one."""
        st = self._threads[thread]
        for seg in st.segments:
            yield seg
        if st.cur:
            yield RingSegment(st.cur_anchor, bytes(st.cur), st.cur_tokens)

    def suffix_anchor(self, thread):
        """Anchor of the oldest surviving segment — the eviction horizon."""
        for seg in self.iter_segments(thread):
            return seg.anchor
        return SegmentAnchor()

    def suffix_bytes(self, thread):
        """Raw record bytes of the surviving suffix (no segment framing)."""
        return b"".join(seg.body for seg in self.iter_segments(thread))

    def suffix_tokens(self, thread):
        return decode_tokens(self.suffix_bytes(thread))

    def framed_bytes(self, thread):
        """The surviving suffix with segment framing, for durable storage."""
        return b"".join(
            encode_segment(seg.anchor, seg.body)
            for seg in self.iter_segments(thread)
        )

    def retained_bytes(self, thread):
        return self._threads[thread].retained_bytes

    def lossy(self, thread=None):
        if thread is not None:
            return self._threads[thread].evicted_tokens > 0
        return any(st.evicted_tokens > 0 for st in self._threads.values())

    def thread_info(self, thread):
        st = self._threads[thread]
        return {
            "anchor": self.suffix_anchor(thread),
            "evicted_tokens": st.evicted_tokens,
            "evicted_bytes": st.evicted_bytes,
            "segments_written": st.segments_sealed + (1 if st.cur else 0),
            "segments_evicted": st.segments_evicted,
            "flushes": st.flushes,
            "retained_bytes": st.retained_bytes,
            "retained_tokens": st.cur_tokens
            + sum(seg.n_tokens for seg in st.segments),
            "total_bytes": st.bytes_seen,
            "total_tokens": st.tokens_seen,
        }

    def info(self):
        """JSON-ready-ish summary (anchors stay SegmentAnchor objects)."""
        return {
            "ring_bytes": self.ring_bytes,
            "segment_bytes": self.segment_bytes,
            "threads": {t: self.thread_info(t) for t in self.threads()},
        }


class PathRecorder:
    """Interpreter hook that records thread-local execution paths.

    ``retain_logs=False`` puts the recorder in flight-recorder mode: each
    flushed token batch is dropped from memory once the sink has it, so
    resident log size is bounded by the flush threshold (the sink — a
    :class:`RingTraceSink` — owns the retained suffix).
    """

    def __init__(self, program, paths=None, sink=None, retain_logs=True):
        self.program = program
        self.paths = paths if paths is not None else ProgramPaths.build(program)
        self.func_ids = {name: i for i, name in enumerate(sorted(program.functions))}
        self.func_names = {i: name for name, i in self.func_ids.items()}
        # thread name -> list of tokens
        self.logs = {}
        # thread name -> stack of [func_name, counter, current_block, ...]
        self._stacks = {}
        # Optional sink; thread name -> tokens already flushed.
        self.sink = sink
        self.retain_logs = retain_logs
        self._flushed = {}
        # Threads that already got their final=True flush this epoch.
        self._final_flushed = set()
        self.instrumentation_ops = 0
        self._finalized = False

    # -- streaming ----------------------------------------------------------

    def _maybe_flush(self, thread_name):
        sink = self.sink
        if sink is None:
            return
        if len(self.logs[thread_name]) - self._flushed[thread_name] >= sink.flush_every:
            self._flush_thread(thread_name)

    def _flush_thread(self, thread_name, final=False):
        """Flush one thread's pending tail; empty final flushes still count.

        A started thread must see exactly one ``final=True`` flush per
        epoch, even when its token count landed exactly on a flush
        boundary (or it recorded nothing at all) — otherwise the sink
        never learns the log completed cleanly.
        """
        log = self.logs[thread_name]
        done = self._flushed[thread_name]
        pending = log[done:]
        if not pending and not (final and thread_name not in self._final_flushed):
            return
        self.sink.flush(thread_name, pending, final=final)
        if final:
            self._final_flushed.add(thread_name)
        if self.retain_logs:
            self._flushed[thread_name] = len(log)
        else:
            del log[:]
            self._flushed[thread_name] = 0

    def _flush_pending(self, final=False):
        """Push every thread's unflushed tail to the sink."""
        if self.sink is None:
            return
        for thread_name in sorted(self.logs):
            self._flush_thread(thread_name, final=final)

    # -- interpreter hook interface -----------------------------------------

    def on_thread_start(self, thread):
        self.logs[thread.name] = []
        self._stacks[thread.name] = []
        self._flushed[thread.name] = 0

    def on_enter(self, thread, func_name):
        stack = self._stacks[thread.name]
        stack.append([func_name, 0, 0])
        self.logs[thread.name].append(("enter", self.func_ids[func_name]))
        self.instrumentation_ops += 1
        self._maybe_flush(thread.name)

    def on_edge(self, thread, func_name, src, dst):
        frame = self._stacks[thread.name][-1]
        bl = self.paths[func_name]
        reset = bl.backedge_reset.get((src, dst))
        if reset is not None:
            emit_add, new_counter = reset
            self.logs[thread.name].append(("path", frame[1] + emit_add))
            frame[1] = new_counter
            self.instrumentation_ops += 1
            self._maybe_flush(thread.name)
        else:
            val = bl.real_edge_val.get((src, dst), 0)
            if val:
                frame[1] += val
                self.instrumentation_ops += 1
        frame[2] = dst

    def on_exit(self, thread, func_name, exit_block):
        stack = self._stacks[thread.name]
        frame = stack.pop()
        bl = self.paths[func_name]
        final = frame[1] + bl.ret_edge_val.get(exit_block, 0)
        log = self.logs[thread.name]
        log.append(("path", final))
        log.append(("exit",))
        self.instrumentation_ops += 1
        self._maybe_flush(thread.name)

    # -- checkpointing ----------------------------------------------------

    def checkpoint(self, interpreter):
        """Archive the logs so far and restart recording mid-execution.

        Implements the log side of the paper's Section 6.4 future work
        ("we plan to integrate CLAP with checkpointing"): each live frame
        contributes a ``resume`` token naming its current position, its
        Ball-Larus counter restarts at zero, and subsequent path ids
        decode as *suffix* segments from the resume block.

        Returns {thread_name: archived token list} for the prefix.
        """
        self._flush_pending(final=True)
        self._final_flushed = set()
        archived = self.logs
        self.logs = {}
        self._flushed = {}
        for thread in interpreter.threads.values():
            stack = self._stacks.get(thread.name)
            if stack is None:
                continue
            log = []
            for frame_state, frame in zip(stack, thread.frames):
                func_name = frame_state[0]
                log.append(("resume", self.func_ids[func_name], frame.block, frame.ip))
                frame_state[1] = 0
                frame_state[2] = frame.block
            self.logs[thread.name] = log
            self._flushed[thread.name] = 0
        return archived

    # -- finalization ---------------------------------------------------------

    def finalize(self, interpreter):
        """Dump partial paths for frames still live at the stop point.

        In the real system this is the crash-time log flush: each live
        frame contributes its unfinished path counter plus the exact stop
        position (block, ip).
        """
        if self._finalized:
            return
        self._finalized = True
        for thread in interpreter.threads.values():
            stack = self._stacks.get(thread.name)
            if not stack:
                continue
            log = self.logs[thread.name]
            # A thread stopped inside wait() already committed one or two of
            # the wait's three sub-SAPs; record how many (thread-local info).
            wait_stage = 0
            if thread.wait_resume is not None:
                wait_stage = 1 if thread.wait_resume[0] == "signaled-pending" else 2
            # Dump innermost-first: the decoder processes tokens in order
            # with the innermost open frame on top of its stack, so each
            # ``partial`` token closes the current top.
            innermost = True
            for frame_state, frame in reversed(list(zip(stack, thread.frames))):
                func_name, counter = frame_state[0], frame_state[1]
                stage = wait_stage if innermost else 0
                log.append(("partial", counter, frame.block, frame.ip, stage))
                innermost = False
        self._flush_pending(final=True)

    # -- results ---------------------------------------------------------------

    def encoded_logs(self):
        """{thread_name: bytes} — what would be written to disk."""
        return {name: encode_tokens(tokens) for name, tokens in self.logs.items()}

    def log_size_bytes(self):
        return sum(len(data) for data in self.encoded_logs().values())


_NO_CACHE = (None, None, None, None, None, None)


class FastPathRecorder(PathRecorder):
    """Fast-path token appender: same token streams, much less per-edge work.

    * Per-function edge tables merge ``backedge_reset`` and the non-zero
      ``real_edge_val`` entries into one dict, stored *in the frame* so the
      hot path does a single ``dict.get`` per edge — no per-edge attribute
      walks or ``paths[func]`` lookups.
    * A thread-identity cache (checked with ``is``) pins the current
      thread's stack/log/run/op cells, skipping the per-hook dict lookups
      while the scheduler keeps the same thread running.
    * Repeated path ids fold in place: a loop that re-executes one BL path
      N times appends a single mutable run cell ``["path", pid, count]``
      instead of N tuples (batched run-length folding; the encoder's RLE
      done at append time).
    * ``instrumentation_ops`` accumulates in per-thread cells and merges at
      finalize/checkpoint, avoiding attribute traffic per edge.

    Run cells materialize into plain ``("path", pid)`` tuples whenever the
    log crosses the flush/finalize boundary, so sinks, the decoder, and
    every downstream consumer see token streams identical to
    :class:`PathRecorder`'s.
    """

    def __init__(self, program, paths=None, sink=None, retain_logs=True):
        super().__init__(program, paths=paths, sink=sink, retain_logs=retain_logs)
        self._edge_tables = {}
        self._ret_vals = {}
        for name in program.functions:
            bl = self.paths[name]
            table = {}
            for edge, val in bl.real_edge_val.items():
                if val:
                    table[edge] = (False, val, 0)
            for edge, (emit_add, new_counter) in bl.backedge_reset.items():
                table[edge] = (True, emit_add, new_counter)
            self._edge_tables[name] = table
            self._ret_vals[name] = bl.ret_edge_val
        # thread name -> [active run cell or None]
        self._runs = {}
        # thread name -> [pending op count]
        self._ops = {}
        # (thread, stack, run holder, op cell, log, name)
        self._cache = _NO_CACHE

    def _activate(self, thread):
        name = thread.name
        cache = (
            thread,
            self._stacks[name],
            self._runs[name],
            self._ops[name],
            self.logs[name],
            name,
        )
        self._cache = cache
        return cache

    # -- hook interface (hot path) ------------------------------------------

    def on_thread_start(self, thread):
        super().on_thread_start(thread)
        self._runs[thread.name] = [None]
        self._ops[thread.name] = [0]

    def on_enter(self, thread, func_name):
        c = self._cache
        if c[0] is not thread:
            c = self._activate(thread)
        c[1].append([func_name, 0, 0, self._edge_tables[func_name]])
        c[2][0] = None
        c[4].append(("enter", self.func_ids[func_name]))
        c[3][0] += 1
        if self.sink is not None:
            self._maybe_flush_fast(c)

    def on_edge(self, thread, func_name, src, dst):
        c = self._cache
        if c[0] is not thread:
            c = self._activate(thread)
        frame = c[1][-1]
        info = frame[3].get((src, dst))
        if info is None:
            frame[2] = dst
            return
        back, add, new_counter = info
        if not back:
            frame[1] += add
            frame[2] = dst
            c[3][0] += 1
            return
        pid = frame[1] + add
        run = c[2]
        cell = run[0]
        if cell is not None and cell[1] == pid:
            cell[2] += 1
        else:
            cell = ["path", pid, 1]
            run[0] = cell
            c[4].append(cell)
        frame[1] = new_counter
        frame[2] = dst
        c[3][0] += 1
        if self.sink is not None:
            self._maybe_flush_fast(c)

    def on_exit(self, thread, func_name, exit_block):
        c = self._cache
        if c[0] is not thread:
            c = self._activate(thread)
        frame = c[1].pop()
        pid = frame[1] + self._ret_vals[func_name].get(exit_block, 0)
        run = c[2]
        cell = run[0]
        if cell is not None and cell[1] == pid:
            cell[2] += 1
        else:
            c[4].append(["path", pid, 1])
        run[0] = None
        c[4].append(("exit",))
        c[3][0] += 1
        if self.sink is not None:
            self._maybe_flush_fast(c)

    def _maybe_flush_fast(self, c):
        if len(c[4]) - self._flushed[c[5]] >= self.sink.flush_every:
            self._flush_thread(c[5])

    # -- materialization -----------------------------------------------------

    def _materialize(self, thread_name):
        """Expand run cells in the unflushed tail into plain tuples."""
        log = self.logs[thread_name]
        done = self._flushed[thread_name]
        tail = log[done:]
        if any(type(entry) is list for entry in tail):
            expanded = []
            for entry in tail:
                if type(entry) is list:
                    expanded.extend([("path", entry[1])] * entry[2])
                else:
                    expanded.append(entry)
            log[done:] = expanded
        self._runs[thread_name][0] = None

    def _merge_ops(self):
        for cell in self._ops.values():
            self.instrumentation_ops += cell[0]
            cell[0] = 0

    def _flush_thread(self, thread_name, final=False):
        self._materialize(thread_name)
        super()._flush_thread(thread_name, final=final)

    def checkpoint(self, interpreter):
        for thread_name in self.logs:
            self._materialize(thread_name)
        self._merge_ops()
        archived = super().checkpoint(interpreter)
        self._cache = _NO_CACHE
        self._runs = {name: [None] for name in self.logs}
        return archived

    def finalize(self, interpreter):
        if self._finalized:
            return
        for thread_name in self.logs:
            self._materialize(thread_name)
        self._merge_ops()
        self._cache = _NO_CACHE
        super().finalize(interpreter)

    def encoded_logs(self):
        if not self._finalized:
            for thread_name in self.logs:
                self._materialize(thread_name)
        return super().encoded_logs()
