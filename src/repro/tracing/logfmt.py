"""Compact binary serialization of path-profile logs.

CLAP's log is, per thread, a stream of small integers; this module encodes
it with tag bytes + LEB128 varints.  Table 2's log-size numbers are the
lengths of these encodings (CLAP) versus the LEAP access-vector encoding.

Tokens
------
``("enter", func_id)``
    A function was entered.
``("path", path_id)``
    A completed Ball-Larus path (emitted at back edges and at returns).
``("exit",)``
    The function returned.
``("partial", path_id, block, ip, wait_stage)``
    Emitted by ``finalize()`` for frames still live when the failure
    stopped the run: an *incomplete* BL path plus the exact stop position.
    ``wait_stage`` is non-zero only when the thread stopped inside a
    ``wait()`` (1 = released the mutex, 2 = also consumed the signal); the
    offline reconstruction must emit the matching sub-SAPs.

Segment framing
---------------
The flight-recorder ring (:class:`repro.tracing.recorder.RingTraceSink`)
partitions one thread's *plain* encoding into fixed-size segments cut at
record boundaries, so any suffix of segments is byte-identical to the
tail of ``encode_tokens(all_tokens)`` and still decodes with
:func:`decode_tokens`.  Each segment carries a :class:`SegmentAnchor` —
the open-frame chain and stream position at the segment's first record —
so the surviving suffix decodes standalone after older segments are
evicted.  Crucially, no Ball-Larus counter is reset at a segment seal:
path ids always embed the pseudo-ENTRY value of their start block, so
every ``path`` token already decodes standalone and the anchor only
needs the *structural* state (which frames are open, how many callee
activations each had completed) that the evicted prefix would otherwise
carry.
"""

from dataclasses import dataclass

TAG_ENTER = 0
TAG_PATH = 1
TAG_EXIT = 2
TAG_PARTIAL = 3
# Run-length compression of repeated path ids: loops re-execute the same
# Ball-Larus path, so ("path", p) x N encodes as one REPEAT record.  This
# is the cheap end of whole-program-path compression (Larus, PLDI'99),
# which the paper's log sizes rely on.
TAG_REPEAT = 4
# ("resume", func_id, block, ip): an open activation resumed after a
# checkpoint; its first path token decodes from ``block`` (see the
# checkpointing extension in repro.core.checkpoint).
TAG_RESUME = 5

_TOKEN_TAGS = {
    "enter": TAG_ENTER,
    "path": TAG_PATH,
    "exit": TAG_EXIT,
    "partial": TAG_PARTIAL,
    "resume": TAG_RESUME,
}
_TAG_TOKENS = {v: k for k, v in _TOKEN_TAGS.items()}


class TraceDecodeError(Exception):
    """A log byte stream is not a valid encoding.

    ``offset`` is the byte position where decoding failed: for a truncated
    varint it is the offset of the first missing byte, for an unknown tag
    the offset of the tag byte itself.  The trace store's recovery scan
    relies on this being raised (rather than ``IndexError`` or silently
    mis-decoded tokens) to find the valid prefix of a crashed recorder's
    log.
    """

    def __init__(self, message, offset=None):
        super().__init__(message)
        self.offset = offset


def write_varint(out, value):
    """Append unsigned LEB128 of ``value`` (must be >= 0) to bytearray."""
    if value < 0:
        raise ValueError("varint must be non-negative, got %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data, pos):
    """Decode unsigned LEB128 at ``pos``; returns (value, new_pos).

    Raises :class:`TraceDecodeError` (with the offset of the missing byte)
    when the varint runs past the end of ``data`` — a truncated log must
    surface as a structured error, never as ``IndexError``.
    """
    result = 0
    shift = 0
    n = len(data)
    while True:
        if pos >= n:
            raise TraceDecodeError(
                "truncated varint at offset %d" % pos, offset=pos
            )
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_tokens(tokens):
    """Encode one thread's token stream to bytes (with path-id RLE)."""
    out = bytearray()
    i = 0
    n = len(tokens)
    while i < n:
        token = tokens[i]
        if token[0] == "path":
            j = i + 1
            while j < n and tokens[j] == token:
                j += 1
            count = j - i
            if count >= 2:
                out.append(TAG_REPEAT)
                write_varint(out, token[1])
                write_varint(out, count)
                i = j
                continue
        tag = _TOKEN_TAGS[token[0]]
        out.append(tag)
        for value in token[1:]:
            write_varint(out, value)
        i += 1
    return bytes(out)


def decode_tokens(data):
    """Decode bytes produced by :func:`encode_tokens`.

    Raises :class:`TraceDecodeError` on an unknown tag byte or a truncated
    stream; a valid prefix is never silently extended with garbage tokens.
    """
    tokens = []
    pos = 0
    n = len(data)
    while pos < n:
        tag_offset = pos
        tag = data[pos]
        pos += 1
        kind = _TAG_TOKENS.get(tag)
        if tag == TAG_REPEAT:
            pid, pos = read_varint(data, pos)
            count, pos = read_varint(data, pos)
            tokens.extend([("path", pid)] * count)
            continue
        if kind == "enter":
            fid, pos = read_varint(data, pos)
            tokens.append(("enter", fid))
        elif kind == "resume":
            fid, pos = read_varint(data, pos)
            block, pos = read_varint(data, pos)
            ip, pos = read_varint(data, pos)
            tokens.append(("resume", fid, block, ip))
        elif kind == "path":
            pid, pos = read_varint(data, pos)
            tokens.append(("path", pid))
        elif kind == "exit":
            tokens.append(("exit",))
        elif kind == "partial":
            pid, pos = read_varint(data, pos)
            block, pos = read_varint(data, pos)
            ip, pos = read_varint(data, pos)
            stage, pos = read_varint(data, pos)
            tokens.append(("partial", pid, block, ip, stage))
        else:
            raise TraceDecodeError(
                "unknown tag byte 0x%02x at offset %d" % (tag, tag_offset),
                offset=tag_offset,
            )
    return tokens


# --------------------------------------------------------------------------
# Segment framing (flight recorder)

SEGMENT_MAGIC = 0xA6


@dataclass(frozen=True)
class SegmentAnchor:
    """Decode anchor for one ring segment.

    ``frames`` is the open-frame chain at the segment's first record,
    outermost first: ``(func_id, calls_done)`` where ``calls_done`` counts
    the callee activations that frame had already *completed* before the
    anchor (the still-open child, if any, is the next chain entry, not a
    completed call).  The remaining fields are cumulative stream positions
    at the segment start; on the first *retained* segment they are exactly
    the eviction horizon: how many tokens/bytes/segments of this thread's
    log were dropped before the surviving suffix.
    """

    frames: tuple = ()
    tokens_before: int = 0
    bytes_before: int = 0
    segments_before: int = 0

    def to_json(self):
        return {
            "frames": [list(f) for f in self.frames],
            "tokens_before": self.tokens_before,
            "bytes_before": self.bytes_before,
            "segments_before": self.segments_before,
        }

    @classmethod
    def from_json(cls, obj):
        return cls(
            frames=tuple((int(f[0]), int(f[1])) for f in obj.get("frames", ())),
            tokens_before=int(obj.get("tokens_before", 0)),
            bytes_before=int(obj.get("bytes_before", 0)),
            segments_before=int(obj.get("segments_before", 0)),
        )


def encode_segment(anchor, body):
    """Frame one segment: magic, anchor header, then the raw record body.

    ``body`` must be a record-aligned slice of a plain token encoding, so
    it round-trips through :func:`decode_tokens` on its own.
    """
    out = bytearray()
    out.append(SEGMENT_MAGIC)
    write_varint(out, len(anchor.frames))
    for func_id, calls_done in anchor.frames:
        write_varint(out, func_id)
        write_varint(out, calls_done)
    write_varint(out, anchor.tokens_before)
    write_varint(out, anchor.bytes_before)
    write_varint(out, anchor.segments_before)
    write_varint(out, len(body))
    out.extend(body)
    return bytes(out)


def decode_segment(data, pos=0):
    """Decode one framed segment at ``pos``; returns (anchor, body, new_pos).

    Raises :class:`TraceDecodeError` with the offending offset on a bad
    magic byte, a header varint truncated mid-stream, or a body shorter
    than its declared length (offset = first missing byte).
    """
    if pos >= len(data):
        raise TraceDecodeError(
            "truncated segment at offset %d" % pos, offset=pos
        )
    if data[pos] != SEGMENT_MAGIC:
        raise TraceDecodeError(
            "bad segment magic 0x%02x at offset %d" % (data[pos], pos),
            offset=pos,
        )
    pos += 1
    n_frames, pos = read_varint(data, pos)
    frames = []
    for _ in range(n_frames):
        func_id, pos = read_varint(data, pos)
        calls_done, pos = read_varint(data, pos)
        frames.append((func_id, calls_done))
    tokens_before, pos = read_varint(data, pos)
    bytes_before, pos = read_varint(data, pos)
    segments_before, pos = read_varint(data, pos)
    body_len, pos = read_varint(data, pos)
    end = pos + body_len
    if end > len(data):
        raise TraceDecodeError(
            "segment body truncated at offset %d" % len(data),
            offset=len(data),
        )
    anchor = SegmentAnchor(
        frames=tuple(frames),
        tokens_before=tokens_before,
        bytes_before=bytes_before,
        segments_before=segments_before,
    )
    return anchor, bytes(data[pos:end]), end


def decode_segments(data):
    """Decode a concatenation of framed segments to [(anchor, body)]."""
    out = []
    pos = 0
    while pos < len(data):
        anchor, body, pos = decode_segment(data, pos)
        out.append((anchor, body))
    return out
