"""Reconstruct exact per-thread paths from recorded BL profiles.

The decoder turns one thread's token stream back into a *frame trace tree*:
each node is one function activation with the full sequence of basic blocks
it executed, plus its callee activations in call order.  The symbolic
executor (:mod:`repro.analysis.symexec`) replays bytecode along this tree.

Frames that were still live when the failure stopped the run decode from
``partial`` tokens; their block sequence ends at the recorded stop block
and ``stop_ip`` names the exact instruction where the thread halted.
"""

from dataclasses import dataclass, field


@dataclass
class FrameTrace:
    """One function activation reconstructed from the log."""

    func: str
    blocks: list = field(default_factory=list)
    calls: list = field(default_factory=list)  # callee FrameTraces, in order
    complete: bool = False
    stop_block: int | None = None
    stop_ip: int | None = None
    wait_stage: int = 0  # sub-SAPs already committed if stopped inside wait()
    # Checkpoint-resume: the activation was already open when recording
    # (re)started; execution continues at (resume_block, resume_ip) and the
    # first path token decodes as a suffix segment from that block.
    resumed: bool = False
    resume_block: int | None = None
    resume_ip: int | None = None
    _pending_resume: bool = False
    # Flight-recorder suffix decoding: the activation was already open at
    # the eviction horizon (it comes from a segment anchor, not an ``enter``
    # token).  ``anchor_calls`` is the anchor's count of callee activations
    # this frame completed before the horizon — the prefix synthesizer must
    # account for every one of them.
    anchored: bool = False
    anchor_calls: int = 0
    # Prefix synthesis (store/synthesize.py): the first ``synth_blocks``
    # entries of ``blocks`` were reconstructed, not recorded; a frame with
    # ``synthesized`` is an entirely reconstructed activation.  Symbolic
    # execution marks SAPs and path conditions from these regions so the
    # encoder can relax them (the entry state is unknown).
    synthesized: bool = False
    synth_blocks: int = 0

    def total_blocks(self):
        return len(self.blocks) + sum(c.total_blocks() for c in self.calls)


@dataclass
class DecodedThreadPath:
    """The whole recorded path of one thread (its root activation)."""

    thread: str
    root: FrameTrace

    def total_blocks(self):
        return self.root.total_blocks()


class LogDecodeError(Exception):
    """A token stream is structurally inconsistent with its program.

    ``thread`` names the offending thread when known (used by the trace
    store's recovery validation).
    """

    def __init__(self, message, thread=None):
        super().__init__(message)
        self.thread = thread


def decode_thread_tokens(thread_name, tokens, paths, func_names, anchor=None):
    """Decode one thread's token list into a :class:`DecodedThreadPath`.

    ``paths`` is the program's :class:`~repro.tracing.ball_larus.ProgramPaths`;
    ``func_names`` maps recorder function ids back to names.

    ``anchor`` (a :class:`~repro.tracing.logfmt.SegmentAnchor`) makes this
    a *suffix* decode: the anchor's open-frame chain is pre-opened (with
    empty block lists) before any token is processed, so a flight-recorder
    suffix whose ``enter`` tokens were evicted still decodes.  Because
    Ball-Larus path ids embed their start block's pseudo-ENTRY value, the
    first ``path`` token of each anchored frame decodes its *entire*
    in-flight path — including blocks executed before the horizon — with
    the standard decode; only fully evicted earlier paths are missing, and
    closing that gap is the prefix synthesizer's job.
    """
    stack = []
    root = None
    if anchor is not None:
        for fid, calls_done in anchor.frames:
            node = FrameTrace(
                func=func_names[fid], anchored=True, anchor_calls=calls_done
            )
            if stack:
                stack[-1].calls.append(node)
            else:
                root = node
            stack.append(node)
    for token in tokens:
        kind = token[0]
        if kind == "resume":
            _, fid, block, ip = token
            func = func_names[fid]
            node = FrameTrace(
                func=func,
                resumed=True,
                resume_block=block,
                resume_ip=ip,
                _pending_resume=True,
            )
            node.blocks.append(block)
            if stack:
                stack[-1].calls.append(node)
            elif root is None:
                root = node
            else:
                raise LogDecodeError(
                    "thread %s: resume token outside the open frame stack"
                    % thread_name,
                    thread=thread_name,
                )
            stack.append(node)
            continue
        if kind == "enter":
            func = func_names[token[1]]
            node = FrameTrace(func=func)
            if stack:
                stack[-1].calls.append(node)
            elif root is None:
                root = node
            else:
                raise LogDecodeError(
                    "thread %s: second root activation in log" % thread_name,
                    thread=thread_name,
                )
            stack.append(node)
        elif kind == "path":
            if not stack:
                raise LogDecodeError(
                    "thread %s: path token outside frame" % thread_name,
                    thread=thread_name,
                )
            node = stack[-1]
            if node._pending_resume:
                node._pending_resume = False
                blocks, _ = paths[node.func].decode(
                    token[1], start_block=node.resume_block
                )
                node.blocks.extend(blocks[1:])  # resume block already there
            else:
                blocks, _ = paths[node.func].decode(token[1])
                node.blocks.extend(blocks)
        elif kind == "exit":
            if not stack:
                raise LogDecodeError(
                    "thread %s: exit token outside frame" % thread_name,
                    thread=thread_name,
                )
            stack.pop().complete = True
        elif kind == "partial":
            if not stack:
                raise LogDecodeError(
                    "thread %s: partial token outside frame" % thread_name,
                    thread=thread_name,
                )
            node = stack.pop()
            _, path_id, stop_block, stop_ip, wait_stage = token
            if node._pending_resume:
                node._pending_resume = False
                blocks, _ = paths[node.func].decode(
                    path_id, stop_block=stop_block, start_block=node.resume_block
                )
                blocks = blocks[1:]  # resume block already present
            else:
                blocks, _ = paths[node.func].decode(path_id, stop_block=stop_block)
            node.blocks.extend(blocks)
            node.complete = False
            node.stop_block = stop_block
            node.stop_ip = stop_ip
            node.wait_stage = wait_stage
        else:
            raise LogDecodeError(
                "unknown token %r" % (token,), thread=thread_name
            )
    if root is None:
        raise LogDecodeError(
            "thread %s: empty log" % thread_name, thread=thread_name
        )
    if stack:
        raise LogDecodeError(
            "thread %s: %d frames left open without partial tokens"
            % (thread_name, len(stack)),
            thread=thread_name,
        )
    return DecodedThreadPath(thread=thread_name, root=root)


def decode_log(recorder):
    """Decode every thread's log of a finalized PathRecorder.

    Returns {thread_name: DecodedThreadPath}.
    """
    result = {}
    for thread_name, tokens in recorder.logs.items():
        result[thread_name] = decode_thread_tokens(
            thread_name, tokens, recorder.paths, recorder.func_names
        )
    return result
