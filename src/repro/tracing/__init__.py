"""Thread-local path tracing (CLAP's online phase) and the LEAP baseline.

* :mod:`repro.tracing.ball_larus` — the classical Ball-Larus path numbering
  algorithm on MiniLang CFGs.
* :mod:`repro.tracing.recorder` — the CLAP runtime recorder: per-thread
  whole-path profiles as (ENTER / PATH / PARTIAL / EXIT) token streams.
* :mod:`repro.tracing.decoder` — reconstructs the exact per-thread basic
  block paths from the recorded profiles.
* :mod:`repro.tracing.logfmt` — compact varint serialization (log sizes for
  Table 2 are measured on these encodings).
* :mod:`repro.tracing.leap` — the LEAP (FSE'10) shared-access-vector
  recorder used as the paper's comparison baseline.
"""

from repro.tracing.ball_larus import BallLarus, ProgramPaths
from repro.tracing.decoder import DecodedThreadPath, decode_log
from repro.tracing.leap import LeapRecorder
from repro.tracing.logfmt import TraceDecodeError, decode_tokens, encode_tokens
from repro.tracing.recorder import PathRecorder, StreamingTraceSink

__all__ = [
    "BallLarus",
    "ProgramPaths",
    "PathRecorder",
    "StreamingTraceSink",
    "DecodedThreadPath",
    "decode_log",
    "LeapRecorder",
    "encode_tokens",
    "decode_tokens",
    "TraceDecodeError",
]
