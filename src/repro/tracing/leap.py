"""LEAP-style access-vector recorder (the paper's comparison baseline).

LEAP (Huang, Liu, Zhang — FSE 2010) records, for every shared variable, the
order of thread accesses: an *access vector* of thread ids, appended under a
per-variable lock.  That gives deterministic replay directly, but:

* every shared access takes a synchronized instrumentation step (expensive
  when shared accesses dominate, e.g. ``racey``), and
* the added locks are memory barriers, so TSO/PSO-only bugs can no longer
  occur while recording — the Heisenberg effect CLAP avoids.

Setting :attr:`fences_memory` makes the interpreter drain the recording
thread's store buffer around every shared write, which models exactly that
perturbation (see ``tests/tracing/test_leap.py``).

Log size is measured like CLAP's: varint-encoded vectors, summed.
"""

from repro.runtime import events as ev
from repro.tracing.logfmt import write_varint


class LeapRecorder:
    """Interpreter hook that records per-variable access vectors."""

    #: LEAP's instrumentation synchronizes -> acts as a fence (see module doc).
    fences_memory = True

    def __init__(self, program):
        self.program = program
        # variable/sync-object key -> list of accessing thread tids
        self.vectors = {}
        self._tids = {}  # thread name -> numeric id
        self.instrumentation_ops = 0

    def on_thread_start(self, thread):
        self._tids[thread.name] = thread.tid

    def on_sap(self, thread, sap):
        if sap.kind in (ev.START, ev.EXIT):
            return
        if sap.is_data:
            key = sap.addr[0] if len(sap.addr) == 1 else sap.addr
        else:
            key = sap.addr  # sync object name / thread name
        self.vectors.setdefault(key, []).append(thread.tid)
        # One lock acquire + append + release per access.
        self.instrumentation_ops += 3

    def encoded_logs(self):
        """{key: bytes} — per-variable access vectors as varints."""
        result = {}
        for key, vector in self.vectors.items():
            out = bytearray()
            for tid in vector:
                write_varint(out, tid)
            result[key] = bytes(out)
        return result

    def log_size_bytes(self):
        return sum(len(v) for v in self.encoded_logs().values())

    def total_accesses(self):
        return sum(len(v) for v in self.vectors.values())
