"""Ball-Larus efficient path profiling on MiniLang CFGs.

Implements the classical algorithm (Ball & Larus, MICRO'96) that CLAP's
online phase extends: acyclic intra-procedural paths get dense integer ids
such that the id of a path is the sum of the values of its edges.  Loops
are handled with the standard pseudo-edge trick:

* each back edge ``u -> v`` is removed from the DAG and replaced by pseudo
  edges ``ENTRY -> v`` and ``u -> EXIT``;
* at runtime, taking the back edge emits the current path id plus
  ``val(u -> EXIT)`` and restarts the counter at ``val(ENTRY -> v)``.

The id space of each function is ``[0, num_paths)``; ids regenerate the
exact block sequence (including *prefix* paths, which CLAP needs because a
crashed execution stops threads mid-path — see :func:`BallLarus.decode`).
"""

from dataclasses import dataclass, field

from repro.minilang import bytecode as bc

# Synthetic exit node id (no real block may use it).
EXIT_NODE = -1

# Edge kinds.
REAL = "real"
TO_EXIT = "to-exit"  # real edge from a RET block to EXIT_NODE
PSEUDO_ENTRY = "pseudo-entry"  # ENTRY -> back-edge target
PSEUDO_EXIT = "pseudo-exit"  # back-edge source -> EXIT


@dataclass(frozen=True)
class DagEdge:
    src: int
    dst: int
    kind: str


class BallLarus:
    """Ball-Larus numbering for one compiled function."""

    def __init__(self, func):
        self.func = func
        self.back_edges = self._find_back_edges()
        self.dag = self._build_dag()
        self.num_paths, self.edge_val = self._assign_values()
        # Successor adjacency (value-sorted descending) for decoding.
        self._succ = {}
        for edge in self.dag:
            self._succ.setdefault(edge.src, []).append(edge)
        for edges in self._succ.values():
            edges.sort(key=lambda e: self.edge_val[e], reverse=True)
        # Runtime lookup tables.
        self.real_edge_val = {
            (e.src, e.dst): self.edge_val[e] for e in self.dag if e.kind == REAL
        }
        self.ret_edge_val = {
            e.src: self.edge_val[e] for e in self.dag if e.kind == TO_EXIT
        }
        self.backedge_reset = {}  # (u, v) -> (emit_add, new_counter)
        pseudo_exit_val = {
            e.src: self.edge_val[e] for e in self.dag if e.kind == PSEUDO_EXIT
        }
        pseudo_entry_val = {
            e.dst: self.edge_val[e] for e in self.dag if e.kind == PSEUDO_ENTRY
        }
        for (u, v) in self.back_edges:
            self.backedge_reset[(u, v)] = (pseudo_exit_val[u], pseudo_entry_val[v])
        # Count of instrumentation sites (edges with a non-zero increment
        # plus one emit per back edge / exit) — the overhead model.
        self.instrumented_edges = sum(
            1 for e in self.dag if e.kind == REAL and self.edge_val[e] != 0
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _cfg_succ(self, block_id):
        return self.func.blocks[block_id].successors()

    def _find_back_edges(self):
        """DFS from entry; an edge to a node on the current DFS stack is a
        back edge (sufficient for the reducible CFGs our compiler emits)."""
        back = set()
        on_stack = set()
        visited = set()

        # Iterative DFS to survive deep CFGs.
        stack = [(0, iter(self._cfg_succ(0)))]
        visited.add(0)
        on_stack.add(0)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ in on_stack:
                    back.add((node, succ))
                elif succ not in visited:
                    visited.add(succ)
                    on_stack.add(succ)
                    stack.append((succ, iter(self._cfg_succ(succ))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_stack.discard(node)
        self._reachable = visited
        return back

    def _build_dag(self):
        edges = []
        for block in self.func.blocks:
            if block.id not in self._reachable:
                continue
            term = block.terminator
            if term is not None and term.op == bc.RET:
                edges.append(DagEdge(block.id, EXIT_NODE, TO_EXIT))
            for succ in block.successors():
                if (block.id, succ) in self.back_edges:
                    continue
                edges.append(DagEdge(block.id, succ, REAL))
        # Deduplicate pseudo edges: two back edges sharing a target (or a
        # source) must share one pseudo edge, or values would double-count.
        for v in sorted({v for (_, v) in self.back_edges}):
            edges.append(DagEdge(0, v, PSEUDO_ENTRY))
        for u in sorted({u for (u, _) in self.back_edges}):
            edges.append(DagEdge(u, EXIT_NODE, PSEUDO_EXIT))
        return edges

    def _assign_values(self):
        """Topological NumPaths computation; edge values are prefix sums."""
        succ = {}
        indeg = {EXIT_NODE: 0}
        for node in self._reachable:
            indeg.setdefault(node, 0)
        for edge in self.dag:
            succ.setdefault(edge.src, []).append(edge)
            indeg[edge.dst] = indeg.get(edge.dst, 0) + 1

        # Kahn topological order.
        order = []
        ready = [n for n, d in sorted(indeg.items()) if d == 0]
        indeg = dict(indeg)
        while ready:
            node = ready.pop()
            order.append(node)
            for edge in succ.get(node, ()):
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(indeg):
            raise ValueError(
                "CFG of %s is not reducible to a DAG (irreducible loop?)"
                % self.func.name
            )

        num_paths = {EXIT_NODE: 1}
        edge_val = {}
        for node in reversed(order):
            if node == EXIT_NODE:
                continue
            out = succ.get(node, [])
            if not out:
                # A dead-end block (unreachable-in-practice); give it one
                # path so decoding stays total.
                num_paths[node] = 1
                continue
            total = 0
            # Deterministic order: by (dst, kind) so runtime and decoder agree.
            for edge in sorted(out, key=lambda e: (e.dst, e.kind)):
                edge_val[edge] = total
                total += num_paths[edge.dst]
            num_paths[node] = total
        return num_paths[0], edge_val

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #

    def decode(self, path_id, stop_block=None, start_block=None):
        """Regenerate the block sequence of ``path_id``.

        For a complete path (``stop_block is None``) the walk runs from
        ENTRY to EXIT.  For a *prefix* path — a thread stopped mid-path by
        the failure — ``stop_block`` names the block where execution
        stopped, and the walk ends there.  Prefix decoding is unique: two
        distinct prefixes ending at the same block with the same value
        would extend to two complete paths with the same id.

        ``start_block`` decodes a *suffix* segment beginning at an
        arbitrary block — the first segment after a checkpoint resume,
        whose counter restarted at 0 mid-path.  Suffix sums from a node m
        are unique in [0, NumPaths(m)) by the same Ball-Larus invariant.

        Returns ``(blocks, ended_by_back_edge)`` where ``blocks`` is the
        sequence of real block ids visited by this path segment.
        """
        blocks = []
        resumed = start_block is not None
        node = start_block if resumed else 0
        remaining = path_id
        first = not resumed
        ended_by_back_edge = False
        while True:
            if node != EXIT_NODE:
                is_pseudo_start = False
                if first:
                    # A segment that starts after a back edge begins with
                    # the pseudo ENTRY edge; take it if its value fits and
                    # it is the greedy choice.
                    pass
                blocks.append(node)
            if stop_block is not None and node == stop_block and remaining == 0:
                break
            if node == EXIT_NODE:
                break
            out = self._succ.get(node)
            if not out:
                break
            chosen = None
            for edge in out:  # sorted by value, descending
                if first and edge.kind == PSEUDO_EXIT:
                    continue  # cannot end before starting
                if resumed and edge.kind == PSEUDO_ENTRY:
                    continue  # suffix segments start mid-path, physically
                if self.edge_val[edge] <= remaining:
                    chosen = edge
                    break
            if chosen is None:
                raise ValueError(
                    "cannot decode path id %d in %s at block %d"
                    % (path_id, self.func.name, node)
                )
            remaining -= self.edge_val[chosen]
            if chosen.kind == PSEUDO_ENTRY:
                blocks.pop()  # ENTRY was not really visited by this segment
                node = chosen.dst
                first = False
                continue
            if chosen.kind == PSEUDO_EXIT:
                ended_by_back_edge = True
                break
            node = chosen.dst
            first = False
        return blocks, ended_by_back_edge


@dataclass
class ProgramPaths:
    """Ball-Larus numberings for every function of a program."""

    program: object
    by_func: dict = field(default_factory=dict)

    @classmethod
    def build(cls, program):
        paths = cls(program=program)
        for name, func in program.functions.items():
            paths.by_func[name] = BallLarus(func)
        return paths

    def __getitem__(self, func_name):
        return self.by_func[func_name]

    def static_path_counts(self):
        return {name: bl.num_paths for name, bl in self.by_func.items()}
